//! Noise-model parameter sets (Section 7, Tables 2 and 3).
//!
//! A [`NoiseModel`] is the generic, parametrised model of Section 7.1: a
//! per-error-channel gate error probability for single-qudit gates (`p1`)
//! and two-qudit gates (`p2`), gate durations, and an optional `T1`
//! relaxation time driving amplitude-damping idle errors. The concrete
//! parameter sets for superconducting devices (Table 2) and trapped-ion
//! ¹⁷¹Yb⁺ devices (Table 3) are provided in the submodules.

pub mod superconducting;
pub mod trapped_ion;

use crate::channels::{
    crosstalk_channel, leakage_channel, overrotation_channel, two_qudit_leakage_channel,
    two_qudit_overrotation_channel,
};
use crate::damping::idle_damping_channel;
use crate::depolarizing::{single_qudit_depolarizing, two_qudit_depolarizing};
use crate::error::NoiseResult;
use crate::kraus::Channel;

pub use superconducting::{sc, sc_gates, sc_t1, sc_t1_gates, superconducting_models};
pub use trapped_ion::{bare_qutrit, dressed_qutrit, ti_qubit, trapped_ion_models};

/// A generic, parametrised noise model (Section 7.1).
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseModel {
    /// Human-readable model name (e.g. `"SC+T1"`).
    pub name: String,
    /// Per-error-channel probability for single-qudit gates. The paper's
    /// tables quote `3·p1` (the total qubit error probability); this field
    /// stores `p1` itself.
    pub p1: f64,
    /// Per-error-channel probability for two-qudit gates. The paper's tables
    /// quote `15·p2`; this field stores `p2` itself.
    pub p2: f64,
    /// Relaxation time `T1` in seconds. `None` disables amplitude-damping
    /// idle errors (used for the trapped-ion clock-state models, whose idle
    /// errors the paper describes as negligible coherent phases).
    pub t1: Option<f64>,
    /// Duration of a single-qudit gate in seconds.
    pub gate_time_1q: f64,
    /// Duration of a two-qudit gate in seconds.
    pub gate_time_2q: f64,
    /// Per-gate probability of amplitude exchanging with the |2⟩ level
    /// (leakage out of — and back into — the qubit subspace). `None`
    /// disables the channel; requires dimension ≥ 3.
    pub leak_rate: Option<f64>,
    /// Coherent over-rotation angle ε: every gate is followed by the
    /// unitary `exp(−iεH)` with `H` the nearest-level coupling Hamiltonian.
    /// `None` disables the channel.
    pub overrotation: Option<f64>,
    /// ZZ-style crosstalk coupling strength ζ in rad/s, accumulated between
    /// schedule-adjacent neighbours over each frame's duration. `None`
    /// disables the channel.
    pub crosstalk: Option<f64>,
}

impl NoiseModel {
    /// Returns `self` with the leakage channel enabled at rate `p`.
    pub fn with_leakage(mut self, p: f64) -> Self {
        self.leak_rate = Some(p);
        self
    }

    /// Returns `self` with the coherent over-rotation channel enabled at
    /// angle `epsilon`.
    pub fn with_overrotation(mut self, epsilon: f64) -> Self {
        self.overrotation = Some(epsilon);
        self
    }

    /// Returns `self` with ZZ-style crosstalk enabled at coupling strength
    /// `zeta` (rad/s).
    pub fn with_crosstalk(mut self, zeta: f64) -> Self {
        self.crosstalk = Some(zeta);
        self
    }

    /// Validates the optional channel parameters against dimension `d` by
    /// building each enabled channel once, so an invalid model is rejected
    /// at spec time instead of mid-run.
    ///
    /// # Errors
    ///
    /// Returns the first channel-construction failure: a non-finite or
    /// out-of-range parameter, or leakage on a `d < 3` register.
    pub fn validate_channels(&self, d: usize) -> NoiseResult<()> {
        if let Some(p) = self.leak_rate {
            leakage_channel(d, p)?;
        }
        if let Some(eps) = self.overrotation {
            overrotation_channel(d, eps)?;
        }
        if let Some(zeta) = self.crosstalk {
            crosstalk_channel(d, zeta, self.gate_time_2q)?;
        }
        Ok(())
    }

    /// Composes the optional physical channels (coherent over-rotation
    /// first, then leakage) under the depolarizing tail, keeping the site a
    /// single mixed-unitary channel. Models without the optional fields
    /// return `depol` untouched — branch-for-branch identical to the
    /// pre-extension channels, so existing RNG streams do not shift.
    fn gate_error_with_extras(
        &self,
        d: usize,
        depol: Channel,
        two_qudit: bool,
    ) -> NoiseResult<Channel> {
        let mut channel = depol;
        if let Some(p) = self.leak_rate {
            let leak = if two_qudit {
                two_qudit_leakage_channel(d, p)?
            } else {
                leakage_channel(d, p)?
            };
            channel = leak.then(&channel)?;
        }
        if let Some(eps) = self.overrotation {
            let over = if two_qudit {
                two_qudit_overrotation_channel(d, eps)?
            } else {
                overrotation_channel(d, eps)?
            };
            channel = over.then(&channel)?;
        }
        Ok(channel)
    }

    /// Builds the single-qudit gate-error channel for dimension `d`.
    ///
    /// # Errors
    ///
    /// Propagates probability-validation failures.
    pub fn single_qudit_gate_error(&self, d: usize) -> NoiseResult<Channel> {
        let depol = single_qudit_depolarizing(d, self.p1)?;
        self.gate_error_with_extras(d, depol, false)
    }

    /// Builds the two-qudit gate-error channel for dimension `d`.
    ///
    /// # Errors
    ///
    /// Propagates probability-validation failures.
    pub fn two_qudit_gate_error(&self, d: usize) -> NoiseResult<Channel> {
        self.two_qudit_gate_error_scaled(d, 1.0)
    }

    /// Builds the two-qudit gate-error channel with `p2` scaled by an
    /// edge-quality multiplier (1.0 = nominal — bit-identical to the
    /// unscaled channel).
    ///
    /// # Errors
    ///
    /// Propagates probability-validation failures (a scale pushing the
    /// total error probability past 1 is rejected like any other bad `p2`).
    pub fn two_qudit_gate_error_scaled(&self, d: usize, scale: f64) -> NoiseResult<Channel> {
        let depol = two_qudit_depolarizing(d, self.p2 * scale)?;
        self.gate_error_with_extras(d, depol, true)
    }

    /// Builds the crosstalk channel for dimension `d` accumulated over a
    /// frame of `dt` seconds, or `None` if the model has no crosstalk.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn crosstalk_error(&self, d: usize, dt: f64) -> NoiseResult<Option<Channel>> {
        match self.crosstalk {
            Some(zeta) => Ok(Some(crosstalk_channel(d, zeta, dt)?)),
            None => Ok(None),
        }
    }

    /// Builds the idle (amplitude-damping) channel for dimension `d` and a
    /// moment of duration `dt` seconds, or `None` if the model has no `T1`.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn idle_error(&self, d: usize, dt: f64) -> NoiseResult<Option<Channel>> {
        match self.t1 {
            Some(t1) => Ok(Some(idle_damping_channel(d, dt, t1)?)),
            None => Ok(None),
        }
    }

    /// The moment duration used for idle-error accounting: the two-qudit gate
    /// time if the moment contains a multi-qudit gate, else the single-qudit
    /// gate time (Section 6.1).
    pub fn moment_duration(&self, has_multi_qudit_gate: bool) -> f64 {
        if has_multi_qudit_gate {
            self.gate_time_2q
        } else {
            self.gate_time_1q
        }
    }

    /// The total single-qudit gate error probability `(d²−1)·p1` for
    /// dimension `d`.
    pub fn total_single_qudit_error(&self, d: usize) -> f64 {
        ((d * d - 1) as f64) * self.p1
    }

    /// The total two-qudit gate error probability `(d⁴−1)·p2` for dimension
    /// `d`.
    pub fn total_two_qudit_error(&self, d: usize) -> f64 {
        ((d.pow(4) - 1) as f64) * self.p2
    }
}

/// All seven named noise models evaluated in the paper (Tables 2 and 3), in
/// the order they appear in Figure 11.
pub fn all_models() -> Vec<NoiseModel> {
    let mut models = superconducting_models();
    models.extend(trapped_ion_models());
    models
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_returns_seven_named_models() {
        let models = all_models();
        assert_eq!(models.len(), 7);
        let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "SC",
                "SC+T1",
                "SC+GATES",
                "SC+T1+GATES",
                "TI_QUBIT",
                "BARE_QUTRIT",
                "DRESSED_QUTRIT"
            ]
        );
    }

    #[test]
    fn channels_built_from_models_are_valid() {
        for model in all_models() {
            for d in [2usize, 3] {
                model
                    .single_qudit_gate_error(d)
                    .unwrap()
                    .validate()
                    .unwrap();
                model.two_qudit_gate_error(d).unwrap().validate().unwrap();
                if let Some(idle) = model.idle_error(d, model.moment_duration(true)).unwrap() {
                    idle.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn moment_duration_uses_two_qudit_time_when_needed() {
        let m = sc();
        assert!(m.moment_duration(true) > m.moment_duration(false));
    }

    #[test]
    fn total_error_probabilities_scale_with_dimension() {
        let m = sc();
        assert!(m.total_two_qudit_error(3) > m.total_two_qudit_error(2));
        assert!((m.total_two_qudit_error(2) - 15.0 * m.p2).abs() < 1e-15);
        assert!((m.total_two_qudit_error(3) - 80.0 * m.p2).abs() < 1e-15);
    }
}
