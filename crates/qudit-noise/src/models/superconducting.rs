//! Superconducting noise models (Section 7.2, Table 2).
//!
//! The baseline `SC` model assumes a device ~10× better than the public IBM
//! machines of the time (which had `3·p1 ≈ 10⁻³`, `15·p2 ≈ 10⁻²`,
//! `T1 ≈ 0.1 ms`): gate errors of `3·p1 = 10⁻⁴`, `15·p2 = 10⁻³` and
//! `T1 = 1 ms`. The other three models improve `T1`, the gate errors, or
//! both, by a further 10×. Gate durations are 100 ns (single-qudit) and
//! 300 ns (two-qudit).

use super::NoiseModel;

/// Single-qudit gate duration for superconducting devices (100 ns).
pub const SC_GATE_TIME_1Q: f64 = 100e-9;
/// Two-qudit gate duration for superconducting devices (300 ns).
pub const SC_GATE_TIME_2Q: f64 = 300e-9;

fn sc_model(name: &str, three_p1: f64, fifteen_p2: f64, t1: f64) -> NoiseModel {
    NoiseModel {
        name: name.to_string(),
        p1: three_p1 / 3.0,
        p2: fifteen_p2 / 15.0,
        t1: Some(t1),
        gate_time_1q: SC_GATE_TIME_1Q,
        gate_time_2q: SC_GATE_TIME_2Q,
        leak_rate: None,
        overrotation: None,
        crosstalk: None,
    }
}

/// The baseline superconducting model `SC`: `3p1 = 10⁻⁴`, `15p2 = 10⁻³`,
/// `T1 = 1 ms`.
pub fn sc() -> NoiseModel {
    sc_model("SC", 1e-4, 1e-3, 1e-3)
}

/// `SC+T1`: the baseline with a 10× longer `T1` (10 ms).
pub fn sc_t1() -> NoiseModel {
    sc_model("SC+T1", 1e-4, 1e-3, 1e-2)
}

/// `SC+GATES`: the baseline with 10× lower gate errors
/// (`3p1 = 10⁻⁵`, `15p2 = 10⁻⁴`).
pub fn sc_gates() -> NoiseModel {
    sc_model("SC+GATES", 1e-5, 1e-4, 1e-3)
}

/// `SC+T1+GATES`: both improvements combined.
pub fn sc_t1_gates() -> NoiseModel {
    sc_model("SC+T1+GATES", 1e-5, 1e-4, 1e-2)
}

/// The current-hardware parameters the paper quotes for IBM's public devices
/// (`3p1 ≈ 10⁻³`, `15p2 ≈ 10⁻²`, `T1 ≈ 0.1 ms`). Not part of Table 2, but
/// useful as a reference point: the paper notes a 14-input Generalized
/// Toffoli is essentially certain to fail on such a device.
pub fn ibm_current() -> NoiseModel {
    sc_model("IBM_CURRENT", 1e-3, 1e-2, 1e-4)
}

/// The four Table 2 models in presentation order.
pub fn superconducting_models() -> Vec<NoiseModel> {
    vec![sc(), sc_t1(), sc_gates(), sc_t1_gates()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let m = sc();
        assert!((3.0 * m.p1 - 1e-4).abs() < 1e-18);
        assert!((15.0 * m.p2 - 1e-3).abs() < 1e-18);
        assert_eq!(m.t1, Some(1e-3));

        let m = sc_t1();
        assert_eq!(m.t1, Some(1e-2));
        assert!((15.0 * m.p2 - 1e-3).abs() < 1e-18);

        let m = sc_gates();
        assert!((3.0 * m.p1 - 1e-5).abs() < 1e-18);
        assert_eq!(m.t1, Some(1e-3));

        let m = sc_t1_gates();
        assert!((15.0 * m.p2 - 1e-4).abs() < 1e-18);
        assert_eq!(m.t1, Some(1e-2));
    }

    #[test]
    fn sc_is_ten_times_better_than_ibm_current() {
        let sc = sc();
        let ibm = ibm_current();
        assert!((ibm.p1 / sc.p1 - 10.0).abs() < 1e-9);
        assert!((ibm.p2 / sc.p2 - 10.0).abs() < 1e-9);
        assert!((sc.t1.unwrap() / ibm.t1.unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gate_times_are_100_and_300_ns() {
        let m = sc();
        assert_eq!(m.gate_time_1q, 100e-9);
        assert_eq!(m.gate_time_2q, 300e-9);
    }

    #[test]
    fn four_models_in_order() {
        let names: Vec<String> = superconducting_models()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(names, vec!["SC", "SC+T1", "SC+GATES", "SC+T1+GATES"]);
    }
}
