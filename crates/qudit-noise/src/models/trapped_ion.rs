//! Trapped-ion ¹⁷¹Yb⁺ noise models (Section 7.3, Table 3).
//!
//! Trapped-ion gate errors are dominated by spontaneous photon scattering
//! from the gate lasers; idle errors are negligible thanks to the long
//! coherence of (dressed) clock states, so these models carry no `T1`
//! amplitude-damping term (the paper notes trapped-ion idle errors are tiny
//! coherent phase errors rather than damping — see DESIGN.md substitution
//! notes). Gate durations are 1 µs (single-qudit) and 200 µs (two-qudit).

use super::NoiseModel;

/// Single-qudit gate duration for trapped-ion devices (1 µs).
pub const TI_GATE_TIME_1Q: f64 = 1e-6;
/// Two-qudit gate duration for trapped-ion devices (200 µs).
pub const TI_GATE_TIME_2Q: f64 = 200e-6;

/// Table 3 quotes the *total* single- and two-qudit gate error probabilities
/// derived from the scattering calculation. [`NoiseModel`] stores
/// per-error-channel probabilities, so the totals are divided by the number
/// of error channels of the dimension the model is intended for (`d² − 1`
/// and `d⁴ − 1`): `d = 2` for `TI_QUBIT`, `d = 3` for the qutrit models.
fn ti_model(name: &str, total_p1: f64, total_p2: f64, d: usize) -> NoiseModel {
    let single_channels = (d * d - 1) as f64;
    let two_channels = (d.pow(4) - 1) as f64;
    NoiseModel {
        name: name.to_string(),
        p1: total_p1 / single_channels,
        p2: total_p2 / two_channels,
        t1: None,
        gate_time_1q: TI_GATE_TIME_1Q,
        gate_time_2q: TI_GATE_TIME_2Q,
        leak_rate: None,
        overrotation: None,
        crosstalk: None,
    }
}

/// The `TI_QUBIT` model: a ¹⁷¹Yb⁺ ion operated as a qubit on clock states
/// (total gate errors `p1 = 6.4e-4`, `p2 = 1.3e-4`).
pub fn ti_qubit() -> NoiseModel {
    ti_model("TI_QUBIT", 6.4e-4, 1.3e-4, 2)
}

/// The `BARE_QUTRIT` model: a ¹⁷¹Yb⁺ ion operated as a qutrit on bare
/// (magnetically sensitive) states (total gate errors `p1 = 2.2e-4`,
/// `p2 = 4.3e-4`).
pub fn bare_qutrit() -> NoiseModel {
    ti_model("BARE_QUTRIT", 2.2e-4, 4.3e-4, 3)
}

/// The `DRESSED_QUTRIT` model: a ¹⁷¹Yb⁺ ion operated as a qutrit on
/// microwave-dressed clock states (total gate errors `p1 = 1.5e-4`,
/// `p2 = 3.1e-4`, lower than the bare qutrit).
pub fn dressed_qutrit() -> NoiseModel {
    ti_model("DRESSED_QUTRIT", 1.5e-4, 3.1e-4, 3)
}

/// The three Table 3 models in presentation order.
pub fn trapped_ion_models() -> Vec<NoiseModel> {
    vec![ti_qubit(), bare_qutrit(), dressed_qutrit()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_totals_match_paper() {
        // The totals (per-channel probability × number of channels) should
        // reproduce the Table 3 figures exactly.
        let m = ti_qubit();
        assert!((m.total_single_qudit_error(2) - 6.4e-4).abs() < 1e-12);
        assert!((m.total_two_qudit_error(2) - 1.3e-4).abs() < 1e-12);
        let m = bare_qutrit();
        assert!((m.total_single_qudit_error(3) - 2.2e-4).abs() < 1e-12);
        assert!((m.total_two_qudit_error(3) - 4.3e-4).abs() < 1e-12);
        let m = dressed_qutrit();
        assert!((m.total_single_qudit_error(3) - 1.5e-4).abs() < 1e-12);
        assert!((m.total_two_qudit_error(3) - 3.1e-4).abs() < 1e-12);
    }

    #[test]
    fn dressed_qutrit_is_better_than_bare_qutrit() {
        assert!(dressed_qutrit().p1 < bare_qutrit().p1);
        assert!(dressed_qutrit().p2 < bare_qutrit().p2);
    }

    #[test]
    fn trapped_ion_models_have_no_t1_damping() {
        for m in trapped_ion_models() {
            assert_eq!(m.t1, None);
        }
    }

    #[test]
    fn gate_times_are_1_and_200_microseconds() {
        let m = ti_qubit();
        assert_eq!(m.gate_time_1q, 1e-6);
        assert_eq!(m.gate_time_2q, 200e-6);
    }
}
