//! Shared, memoized noise-compilation artifacts.
//!
//! The executor's job cache shares the *pass pipeline* per structurally
//! distinct circuit, but noise-shaped artifacts — the [`NoiseProgram`],
//! the per-site channel compilations, the density engine's `U·ρ·U†` plan
//! pairs — were still rebuilt on every run. [`SharedNoiseArtifacts`]
//! closes that gap: one instance rides along with each cached circuit
//! entry and memoizes
//!
//! * the noise program itself (circuit + frames + error sites) — built
//!   once per entry, model-independent;
//! * the compiled ideal state-vector replay and noisy density replay of
//!   the program circuit — built lazily, model-independent;
//! * the per-site channel artifacts (`NoiseSites`) — keyed by the noise
//!   model's parameters, so a sweep over seeds/trial counts under one
//!   model compiles its channels once, while distinct models still get
//!   their own.
//!
//! The hit/build counters are observability for exactly that sharing;
//! [`NoiseArtifactStats`] is surfaced through `qudit_api::Executor`.

use crate::error::NoiseResult;
use crate::kraus::CompiledChannel;
use crate::models::NoiseModel;
use crate::trajectory::{build_noise_sites, NoiseProgram, NoiseSites};
use qudit_circuit::passes::CompiledIr;
use qudit_sim::{
    superoperator_targets, ApplyPlan, CompiledCircuit, CompiledDensityCircuit, Simulator,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A noise model's physics parameters as an exact (bitwise) hash key. Two
/// models with the same parameters produce identical channel artifacts
/// regardless of display name, so the name is deliberately excluded.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ModelKey {
    p1: u64,
    p2: u64,
    t1: Option<u64>,
    gate_time_1q: u64,
    gate_time_2q: u64,
    leak_rate: Option<u64>,
    overrotation: Option<u64>,
    crosstalk: Option<u64>,
}

impl ModelKey {
    fn of(model: &NoiseModel) -> Self {
        ModelKey {
            p1: model.p1.to_bits(),
            p2: model.p2.to_bits(),
            t1: model.t1.map(f64::to_bits),
            gate_time_1q: model.gate_time_1q.to_bits(),
            gate_time_2q: model.gate_time_2q.to_bits(),
            leak_rate: model.leak_rate.map(f64::to_bits),
            overrotation: model.overrotation.map(f64::to_bits),
            crosstalk: model.crosstalk.map(f64::to_bits),
        }
    }
}

/// Counters describing how often per-site channel artifacts were rebuilt
/// versus shared — the observability the memoization satellite asks for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoiseArtifactStats {
    /// Site sets compiled from scratch (one per distinct model per entry
    /// per backend).
    pub sites_built: usize,
    /// Site-set requests answered from the cache.
    pub sites_shared: usize,
}

impl NoiseArtifactStats {
    /// Element-wise sum, for aggregating over cache entries.
    pub fn merge(self, other: NoiseArtifactStats) -> NoiseArtifactStats {
        NoiseArtifactStats {
            sites_built: self.sites_built + other.sites_built,
            sites_shared: self.sites_shared + other.sites_shared,
        }
    }
}

/// Memoized noise artifacts for one compiled circuit (see the module doc).
///
/// Everything is interior-mutable and `Sync`: the replay circuits sit
/// behind `OnceLock`s, the model-keyed site maps behind mutexes that are
/// held only for a map lookup/insert (channel compilation itself happens
/// outside the lock, so two *distinct* models can compile concurrently —
/// a duplicated build for the *same* model in that window is benign and
/// the first insert wins).
pub struct SharedNoiseArtifacts {
    program: Arc<NoiseProgram>,
    ideal: OnceLock<Arc<CompiledCircuit>>,
    noisy_density: OnceLock<Arc<CompiledDensityCircuit>>,
    trajectory_sites: Mutex<HashMap<ModelKey, Arc<NoiseSites<CompiledChannel>>>>,
    density_sites: Mutex<HashMap<ModelKey, Arc<NoiseSites<ApplyPlan>>>>,
    sites_built: AtomicUsize,
    sites_shared: AtomicUsize,
}

impl SharedNoiseArtifacts {
    /// Builds the artifact set from an already-compiled IR — the noise
    /// program is constructed eagerly (it defines everything else), the
    /// rest lazily.
    ///
    /// # Errors
    ///
    /// Same conditions as the underlying program construction:
    /// `UnsupportedLevel` for optimizing pass levels, `Simulation` if a
    /// ≥3-qudit operation could not be lowered.
    pub fn from_ir(ir: &CompiledIr) -> NoiseResult<Self> {
        Ok(SharedNoiseArtifacts {
            program: Arc::new(NoiseProgram::from_ir(ir)?),
            ideal: OnceLock::new(),
            noisy_density: OnceLock::new(),
            trajectory_sites: Mutex::new(HashMap::new()),
            density_sites: Mutex::new(HashMap::new()),
            sites_built: AtomicUsize::new(0),
            sites_shared: AtomicUsize::new(0),
        })
    }

    /// The shared noise program.
    pub(crate) fn program(&self) -> &Arc<NoiseProgram> {
        &self.program
    }

    /// The program circuit compiled for state-vector replay, built through
    /// `planner`'s plan cache on first use.
    pub(crate) fn ideal(&self, planner: &Simulator) -> Arc<CompiledCircuit> {
        Arc::clone(
            self.ideal
                .get_or_init(|| Arc::new(planner.compile(&self.program.circuit))),
        )
    }

    /// The program circuit compiled for noisy `U·ρ·U†` density replay,
    /// built on first use.
    pub(crate) fn noisy_density(&self) -> Arc<CompiledDensityCircuit> {
        Arc::clone(
            self.noisy_density
                .get_or_init(|| Arc::new(CompiledDensityCircuit::compile(&self.program.circuit))),
        )
    }

    /// The trajectory engine's per-site channel branch plans under `model`,
    /// compiled once per distinct model.
    ///
    /// # Errors
    ///
    /// Propagates model-validation failures from channel construction.
    pub(crate) fn trajectory_sites(
        &self,
        model: &NoiseModel,
    ) -> NoiseResult<Arc<NoiseSites<CompiledChannel>>> {
        let key = ModelKey::of(model);
        if let Some(sites) = self.trajectory_sites.lock().expect("sites map").get(&key) {
            self.sites_shared.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(sites));
        }
        let d = self.program.circuit.dim();
        let n = self.program.circuit.width();
        let built = Arc::new(build_noise_sites(&self.program, model, |c, qudits| {
            c.compile(d, n, qudits)
        })?);
        self.sites_built.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(
            self.trajectory_sites
                .lock()
                .expect("sites map")
                .entry(key)
                .or_insert(built),
        ))
    }

    /// The density engine's per-site superoperator plans under `model`,
    /// compiled once per distinct model.
    ///
    /// # Errors
    ///
    /// Propagates model-validation failures from channel construction.
    pub(crate) fn density_sites(
        &self,
        model: &NoiseModel,
    ) -> NoiseResult<Arc<NoiseSites<ApplyPlan>>> {
        let key = ModelKey::of(model);
        if let Some(sites) = self.density_sites.lock().expect("sites map").get(&key) {
            self.sites_shared.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(sites));
        }
        let d = self.program.circuit.dim();
        let n = self.program.circuit.width();
        let built = Arc::new(build_noise_sites(&self.program, model, |c, qudits| {
            ApplyPlan::for_matrix(
                d,
                2 * n,
                &c.superoperator(),
                &superoperator_targets(qudits, n),
            )
        })?);
        self.sites_built.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(
            self.density_sites
                .lock()
                .expect("sites map")
                .entry(key)
                .or_insert(built),
        ))
    }

    /// A snapshot of the build/share counters.
    pub fn stats(&self) -> NoiseArtifactStats {
        NoiseArtifactStats {
            sites_built: self.sites_built.load(Ordering::Relaxed),
            sites_shared: self.sites_shared.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use qudit_circuit::passes::{self, PassLevel};
    use qudit_circuit::{Circuit, Control, Gate};

    fn toffoli() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn same_model_shares_sites_distinct_models_build() {
        let ir = passes::compile(&toffoli(), PassLevel::Physical);
        let artifacts = SharedNoiseArtifacts::from_ir(&ir).unwrap();
        let sc = models::sc();
        let a = artifacts.trajectory_sites(&sc).unwrap();
        let b = artifacts.trajectory_sites(&sc).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same model must share one site set");
        let _ = artifacts.density_sites(&sc).unwrap();
        let mut other = models::sc();
        other.p1 *= 2.0;
        let c = artifacts.trajectory_sites(&other).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "distinct models must not share");
        assert_eq!(
            artifacts.stats(),
            NoiseArtifactStats {
                sites_built: 3,
                sites_shared: 1
            }
        );
    }

    #[test]
    fn replay_circuits_build_once() {
        let ir = passes::compile(&toffoli(), PassLevel::Physical);
        let artifacts = SharedNoiseArtifacts::from_ir(&ir).unwrap();
        let planner = Simulator::new();
        assert!(Arc::ptr_eq(
            &artifacts.ideal(&planner),
            &artifacts.ideal(&planner)
        ));
        assert!(Arc::ptr_eq(
            &artifacts.noisy_density(),
            &artifacts.noisy_density()
        ));
    }
}
