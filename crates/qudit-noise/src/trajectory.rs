//! Quantum-trajectory Monte Carlo noise simulation (Algorithm 1).
//!
//! Instead of evolving a `d^N × d^N` density matrix, each trial propagates a
//! single state vector and draws one error branch per noise-channel
//! application; averaging the resulting fidelities over many trials converges
//! to the density-matrix result. Per Algorithm 1, every trial:
//!
//! 1. draws an initial state,
//! 2. computes the ideal (noise-free) output,
//! 3. replays the circuit moment-by-moment, applying a gate-error channel to
//!    every qudit group acted on (single- or two-qudit depolarizing depending
//!    on the gate arity) and then an idle amplitude-damping error to every
//!    qudit, with duration set by whether the moment contains a two-qudit
//!    gate,
//! 4. records the fidelity `|⟨ψ_ideal|ψ_noisy⟩|²`.

use crate::error::NoiseResult;
use crate::kraus::{Channel, CompiledChannel};
use crate::models::NoiseModel;
use qudit_circuit::passes::{self, PassLevel};
use qudit_circuit::{Circuit, MomentDuration, Operation, Schedule};
use qudit_core::{random_qubit_subspace_state, CoreError, StateVector};
use qudit_sim::{CompiledCircuit, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::HashMap;

/// How gate errors are charged to operations touching three or more qudits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateExpansion {
    /// Charge one two-qudit gate error to the operation's first two qudits.
    /// (Useful as an optimistic ablation baseline.)
    Logical,
    /// Charge the paper's Di & Wei decomposition: 6 two-qudit gate errors and
    /// 7 single-qudit gate errors spread over the operation's qudits, and
    /// 6 two-qudit-length idle periods. This is the accounting the paper uses
    /// for its simulations ("the three-input gates are decomposed into 6
    /// two-input and 7 single-input gates").
    DiWei,
}

/// The input-state distribution for each trial.
#[derive(Clone, Debug, PartialEq)]
pub enum InputState {
    /// A Haar-random state restricted to the qubit subspace of every qudit —
    /// the paper's circuits take qubit inputs and outputs.
    RandomQubitSubspace,
    /// The all-|1⟩ state (every control active), the worst case for
    /// propagating the |2⟩ temporary storage through the whole tree.
    AllOnes,
    /// A fixed basis state.
    Basis(Vec<usize>),
}

/// Configuration for a trajectory simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of Monte Carlo trials.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Gate-error accounting for ≥3-qudit operations.
    pub expansion: GateExpansion,
    /// Input-state distribution.
    pub input: InputState,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            trials: 100,
            seed: 2019,
            expansion: GateExpansion::DiWei,
            input: InputState::RandomQubitSubspace,
        }
    }
}

/// The result of a trajectory simulation: a Monte Carlo fidelity estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FidelityEstimate {
    /// Mean fidelity over the trials.
    pub mean: f64,
    /// Standard error of the mean (σ/√trials).
    pub std_error: f64,
    /// Number of trials.
    pub trials: usize,
}

impl FidelityEstimate {
    /// The paper reports `2σ` error bars; this is `2 × std_error`.
    pub fn two_sigma(&self) -> f64 {
        2.0 * self.std_error
    }
}

/// Noise channels materialised per application *site*: one artifact per
/// qudit for single-qudit channels, one per qudit pair the circuit can
/// touch for two-qudit channels. Built once per run; the replay loops only
/// look up and apply.
///
/// `T` is the backend-specific per-site artifact: [`CompiledChannel`]
/// (branch plans) for the trajectory engine, a superoperator
/// [`ApplyPlan`](qudit_sim::ApplyPlan) for the exact engine. Both engines
/// build through [`build_noise_sites`], so which channels exist at which
/// sites is defined in exactly one place.
pub(crate) struct NoiseSites<T> {
    /// Single-qudit gate-error channel, indexed by qudit.
    pub(crate) single_gate: Vec<T>,
    /// Two-qudit gate-error channel, keyed by the (ordered) qudit pair.
    pub(crate) two_gate: HashMap<[usize; 2], T>,
    /// Idle channels per qudit, for single-qudit-moment, two-qudit-moment
    /// and Di&Wei-expanded-moment durations. `None` when the model has no
    /// `T1`.
    pub(crate) idle_short: Option<Vec<T>>,
    pub(crate) idle_long: Option<Vec<T>>,
    pub(crate) idle_expanded: Option<Vec<T>>,
}

/// Builds the per-site noise artifacts for a (circuit, model, expansion)
/// triple: the five channels (single/two-qudit gate error, three idle
/// durations) and the site set they attach to, with `build` turning each
/// `(channel, qudit set)` into the backend-specific artifact.
///
/// # Errors
///
/// Propagates model-validation failures from channel construction.
pub(crate) fn build_noise_sites<T>(
    circuit: &Circuit,
    model: &NoiseModel,
    expansion: GateExpansion,
    mut build: impl FnMut(&Channel, &[usize]) -> T,
) -> NoiseResult<NoiseSites<T>> {
    let d = circuit.dim();
    let n = circuit.width();
    let single_gate = model.single_qudit_gate_error(d)?;
    let two_gate = model.two_qudit_gate_error(d)?;
    let idle_short = model.idle_error(d, model.moment_duration(false))?;
    let idle_long = model.idle_error(d, model.moment_duration(true))?;
    let idle_expanded = model.idle_error(d, 6.0 * model.moment_duration(true))?;
    let single_sites: Vec<T> = (0..n).map(|q| build(&single_gate, &[q])).collect();
    let two_sites: HashMap<[usize; 2], T> = charged_pairs(circuit, expansion)
        .into_iter()
        .map(|pair| {
            let site = build(&two_gate, &pair);
            (pair, site)
        })
        .collect();
    let mut idle_sites = |c: &Option<Channel>| -> Option<Vec<T>> {
        c.as_ref()
            .map(|ch| (0..n).map(|q| build(ch, &[q])).collect())
    };
    Ok(NoiseSites {
        single_gate: single_sites,
        two_gate: two_sites,
        idle_short: idle_sites(&idle_short),
        idle_long: idle_sites(&idle_long),
        idle_expanded: idle_sites(&idle_expanded),
    })
}

/// One gate-error charge: a single-qudit or two-qudit channel application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ErrorSite {
    /// Charge the single-qudit gate-error channel to this qudit.
    Single(usize),
    /// Charge the two-qudit gate-error channel to this qudit pair.
    Pair([usize; 2]),
}

/// Invokes `f` with every gate-error charge of `op` under `expansion`, in
/// application order. This is the *single source of truth* for the noise
/// accounting: the trajectory simulator samples a branch per site, the
/// exact density-matrix simulator applies the superoperator per site, and
/// both iterate exactly this enumeration — so the two backends cannot
/// drift apart in which errors they charge.
pub(crate) fn for_each_gate_error_site<F: FnMut(ErrorSite)>(
    op: &Operation,
    expansion: GateExpansion,
    mut f: F,
) {
    let qudits = op.qudits();
    match (op.arity(), expansion) {
        (0, _) => {}
        (1, _) => f(ErrorSite::Single(qudits[0])),
        (2, _) | (_, GateExpansion::Logical) => f(ErrorSite::Pair([qudits[0], qudits[1]])),
        (_, GateExpansion::DiWei) => {
            // 6 two-qudit errors over the operation's qudit pairs and
            // 7 single-qudit errors over its qudits, cycling.
            let pairs: Vec<[usize; 2]> = pair_cycle(&qudits);
            for i in 0..6 {
                f(ErrorSite::Pair(pairs[i % pairs.len()]));
            }
            for i in 0..7 {
                f(ErrorSite::Single(qudits[i % qudits.len()]));
            }
        }
    }
}

/// Every qudit pair the gate-error accounting can charge for this circuit
/// under the given expansion — derived from [`for_each_gate_error_site`],
/// so the precompiled pair set always covers what the replay loops ask for.
pub(crate) fn charged_pairs(circuit: &Circuit, expansion: GateExpansion) -> Vec<[usize; 2]> {
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for op in circuit.iter() {
        for_each_gate_error_site(op, expansion, |site| {
            if let ErrorSite::Pair(pair) = site {
                if seen.insert(pair) {
                    pairs.push(pair);
                }
            }
        });
    }
    pairs
}

/// A trajectory noise simulator bound to a circuit and a noise model.
///
/// Construction first runs the circuit through the compiler's
/// [`PassLevel::NoisePreserving`] pipeline — which is guaranteed to leave
/// the operation list and schedule unchanged, so fidelities are
/// bit-identical with and without it — and everything downstream (compiled
/// plans, moment replay, idle accounting) consumes the post-pass circuit
/// and [`Schedule`]. It then compiles the circuit into per-operation apply
/// plans ([`CompiledCircuit`]) *and* precompiles every noise channel per
/// application site ([`NoiseSites`]: per qudit for single-qudit channels,
/// per charged qudit pair for two-qudit channels); both are shared by every
/// trial, so a Monte Carlo run does zero plan building inside its trial
/// loop. Trials already run one per core, so gate application inside a
/// trial is deliberately sequential — nested fan-out would oversubscribe
/// the machine.
pub struct TrajectorySimulator<'a> {
    circuit: Circuit,
    compiled: CompiledCircuit,
    model: &'a NoiseModel,
    schedule: Schedule,
    channels: NoiseSites<CompiledChannel>,
    expansion: GateExpansion,
}

impl<'a> TrajectorySimulator<'a> {
    /// Builds a trajectory simulator, pre-computing the noise channels.
    ///
    /// # Errors
    ///
    /// Returns an error if the model parameters are unphysical for the
    /// circuit's qudit dimension.
    pub fn new(
        circuit: &Circuit,
        model: &'a NoiseModel,
        expansion: GateExpansion,
    ) -> NoiseResult<Self> {
        let d = circuit.dim();
        let n = circuit.width();
        // Noise-preserving by construction: the op list and schedule come
        // out identical; compiling through the pipeline keeps both noise
        // backends on the single post-pass compile path.
        let (circuit, schedule, _report) =
            passes::compile(circuit, PassLevel::NoisePreserving).into_parts();
        let channels = build_noise_sites(&circuit, model, expansion, |c, qudits| {
            c.compile(d, n, qudits)
        })?;
        Ok(TrajectorySimulator {
            // Compile through a Simulator so the mirrored compute/uncompute
            // halves of the paper's circuits share one plan per distinct
            // (gate, qudits) pair instead of each building their own.
            compiled: Simulator::new().compile(&circuit),
            circuit,
            model,
            schedule,
            channels,
            expansion,
        })
    }

    /// The noise model in use.
    pub fn model(&self) -> &NoiseModel {
        self.model
    }

    /// Draws an initial state according to the configured input kind.
    fn draw_input<R: Rng + ?Sized>(
        &self,
        input: &InputState,
        rng: &mut R,
    ) -> Result<StateVector, CoreError> {
        let d = self.circuit.dim();
        let n = self.circuit.width();
        match input {
            InputState::RandomQubitSubspace => random_qubit_subspace_state(d, n, rng),
            InputState::AllOnes => StateVector::from_basis_state(d, &vec![1usize; n]),
            InputState::Basis(digits) => StateVector::from_basis_state(d, digits),
        }
    }

    /// Applies the gate-error channel(s) for one operation.
    fn apply_gate_error<R: Rng + ?Sized>(
        &self,
        op: &Operation,
        state: &mut StateVector,
        rng: &mut R,
    ) {
        for_each_gate_error_site(op, self.expansion, |site| match site {
            ErrorSite::Single(q) => {
                self.channels.single_gate[q].apply_trajectory(state, rng);
            }
            ErrorSite::Pair(pair) => {
                self.channels
                    .two_gate
                    .get(&pair)
                    .expect("pair compiled at construction")
                    .apply_trajectory(state, rng);
            }
        });
    }

    /// Applies the idle error for a moment to every qudit of the register.
    /// The duration class comes straight from the schedule's
    /// [`Moment::duration`](qudit_circuit::Moment::duration) — the single
    /// accounting shared with the exact backend and the compiler passes.
    fn apply_idle_error<R: Rng + ?Sized>(
        &self,
        moment_idx: usize,
        state: &mut StateVector,
        rng: &mut R,
    ) {
        let duration =
            self.schedule.moments()[moment_idx].duration(self.expansion == GateExpansion::DiWei);
        let sites = match duration {
            MomentDuration::ExpandedMultiQudit => &self.channels.idle_expanded,
            MomentDuration::MultiQudit => &self.channels.idle_long,
            MomentDuration::SingleQudit => &self.channels.idle_short,
        };
        if let Some(sites) = sites {
            for site in sites {
                site.apply_trajectory(state, rng);
            }
        }
    }

    /// Runs a single trajectory trial and returns the fidelity between the
    /// ideal and noisy outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if the requested input state is invalid for the
    /// circuit.
    pub fn run_trial(&self, input: &InputState, seed: u64) -> Result<f64, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = self.draw_input(input, &mut rng)?;

        // Ideal (noise-free) evolution, through the shared compiled plans.
        let ideal = self.compiled.run_sequential(initial.clone());

        // Noisy evolution, moment by moment.
        let mut noisy = initial;
        for (moment_idx, op_indices) in self.schedule.iter() {
            for &op_idx in op_indices {
                let op = &self.circuit.operations()[op_idx];
                self.compiled.plan(op_idx).apply_sequential(&mut noisy);
                self.apply_gate_error(op, &mut noisy, &mut rng);
            }
            self.apply_idle_error(moment_idx, &mut noisy, &mut rng);
            noisy.renormalize();
        }

        Ok(ideal.fidelity(&noisy))
    }

    /// Runs `config.trials` trajectory trials (in parallel) and aggregates a
    /// fidelity estimate.
    ///
    /// # Errors
    ///
    /// Returns an error if the input specification is invalid for the
    /// circuit.
    pub fn run(&self, config: &TrajectoryConfig) -> Result<FidelityEstimate, CoreError> {
        let fidelities: Result<Vec<f64>, CoreError> = (0..config.trials)
            .into_par_iter()
            .map(|i| self.run_trial(&config.input, config.seed.wrapping_add(i as u64)))
            .collect();
        let fidelities = fidelities?;
        Ok(estimate_from_samples(&fidelities))
    }
}

/// Convenience entry point: simulate `circuit` under `model` with the given
/// configuration.
///
/// # Errors
///
/// Returns an error if the model is unphysical for the circuit dimension or
/// the input specification is invalid.
pub fn simulate_fidelity(
    circuit: &Circuit,
    model: &NoiseModel,
    config: &TrajectoryConfig,
) -> Result<FidelityEstimate, Box<dyn std::error::Error + Send + Sync>> {
    let sim = TrajectorySimulator::new(circuit, model, config.expansion)?;
    Ok(sim.run(config)?)
}

pub(crate) fn estimate_from_samples(samples: &[f64]) -> FidelityEstimate {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    FidelityEstimate {
        mean,
        std_error: (var / n).sqrt(),
        trials: samples.len(),
    }
}

/// All unordered pairs of the given qudits, cycled in a deterministic order.
pub(crate) fn pair_cycle(qudits: &[usize]) -> Vec<[usize; 2]> {
    let mut pairs = Vec::new();
    for i in 0..qudits.len() {
        for j in (i + 1)..qudits.len() {
            pairs.push([qudits[i], qudits[j]]);
        }
    }
    if pairs.is_empty() {
        pairs.push([qudits[0], qudits[0]]);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{sc, sc_t1_gates};
    use qudit_circuit::{Control, Gate};

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    fn noiseless_model() -> NoiseModel {
        NoiseModel {
            name: "NOISELESS".to_string(),
            p1: 0.0,
            p2: 0.0,
            t1: None,
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
        }
    }

    #[test]
    fn noiseless_model_gives_unit_fidelity() {
        let c = toffoli_fig4();
        let model = noiseless_model();
        let config = TrajectoryConfig {
            trials: 5,
            ..TrajectoryConfig::default()
        };
        let est = simulate_fidelity(&c, &model, &config).unwrap();
        assert!((est.mean - 1.0).abs() < 1e-9, "mean {}", est.mean);
        assert!(est.std_error < 1e-9);
    }

    #[test]
    fn noisy_model_reduces_fidelity_but_not_below_zero() {
        let c = toffoli_fig4();
        let model = sc();
        let config = TrajectoryConfig {
            trials: 20,
            seed: 7,
            ..TrajectoryConfig::default()
        };
        let est = simulate_fidelity(&c, &model, &config).unwrap();
        assert!(est.mean <= 1.0 + 1e-12);
        assert!(est.mean >= 0.0);
        // A 3-qutrit circuit under the SC model should still be quite good.
        assert!(est.mean > 0.9, "mean fidelity {}", est.mean);
    }

    #[test]
    fn better_hardware_gives_better_fidelity() {
        let c = toffoli_fig4();
        let config = TrajectoryConfig {
            trials: 40,
            seed: 11,
            ..TrajectoryConfig::default()
        };
        let bad = NoiseModel {
            name: "BAD".to_string(),
            p1: 1e-3,
            p2: 1e-3,
            t1: Some(1e-4),
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
        };
        let worse = simulate_fidelity(&c, &bad, &config).unwrap();
        let better = simulate_fidelity(&c, &sc_t1_gates(), &config).unwrap();
        assert!(
            better.mean > worse.mean,
            "better {} vs worse {}",
            better.mean,
            worse.mean
        );
    }

    #[test]
    fn all_ones_input_is_deterministic_per_seed() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = TrajectorySimulator::new(&c, &model, GateExpansion::DiWei).unwrap();
        let f1 = sim.run_trial(&InputState::AllOnes, 99).unwrap();
        let f2 = sim.run_trial(&InputState::AllOnes, 99).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn diwei_expansion_is_noisier_than_logical_for_three_qudit_ops() {
        // Build a circuit with a genuine 3-qutrit operation.
        let mut c = Circuit::new(3, 3);
        for _ in 0..4 {
            c.push_controlled(
                Gate::increment(3),
                &[Control::on_one(0), Control::on_two(1)],
                &[2],
            )
            .unwrap();
        }
        let model = NoiseModel {
            name: "MODERATE".to_string(),
            p1: 2e-4,
            p2: 2e-4,
            t1: Some(1e-3),
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
        };
        let config_base = TrajectoryConfig {
            trials: 60,
            seed: 5,
            expansion: GateExpansion::Logical,
            input: InputState::AllOnes,
        };
        let logical = simulate_fidelity(&c, &model, &config_base).unwrap();
        let diwei = simulate_fidelity(
            &c,
            &model,
            &TrajectoryConfig {
                expansion: GateExpansion::DiWei,
                ..config_base
            },
        )
        .unwrap();
        assert!(
            diwei.mean < logical.mean,
            "diwei {} should be below logical {}",
            diwei.mean,
            logical.mean
        );
    }

    #[test]
    fn estimate_from_samples_computes_mean_and_stderr() {
        let est = estimate_from_samples(&[1.0, 0.0]);
        assert!((est.mean - 0.5).abs() < 1e-12);
        assert!(est.std_error > 0.0);
        assert_eq!(est.trials, 2);
        assert!((est.two_sigma() - 2.0 * est.std_error).abs() < 1e-15);
    }

    #[test]
    fn pair_cycle_enumerates_pairs() {
        assert_eq!(pair_cycle(&[1, 2, 3]).len(), 3);
        assert_eq!(pair_cycle(&[4, 5]).len(), 1);
    }
}
