//! Quantum-trajectory Monte Carlo noise simulation (Algorithm 1).
//!
//! Instead of evolving a `d^N × d^N` density matrix, each trial propagates a
//! single state vector and draws one error branch per noise-channel
//! application; averaging the resulting fidelities over many trials converges
//! to the density-matrix result.
//!
//! ## Frame-based accounting
//!
//! Both noise backends replay a [`NoiseProgram`]: the circuit partitioned
//! into *frames* (one per logical moment of the source circuit), each frame
//! holding its operations and a measured idle duration. Per frame, a trial
//!
//! 1. applies every operation's unitary,
//! 2. applies every operation's gate-error channel — **one error per gate,
//!    on the gate's own qudits** (single-qudit depolarizing for 1-qudit
//!    gates, two-qudit depolarizing for 2-qudit gates), and
//! 3. applies the idle amplitude-damping error to every qudit for the
//!    frame's duration.
//!
//! The default program ([`NoiseProgram::physical`]) compiles the circuit
//! through the compiler's [`PassLevel::Physical`] pipeline, which lowers
//! every ≥3-qudit operation into its exact Di & Wei realisation (6
//! two-qudit + 7 single-qudit gates, 6 two-qudit layers) — so the error
//! sites and idle durations *fall out of the lowered circuit*, with no
//! arity-dispatch anywhere in the noise code. Because every gate-error
//! channel here is a Weyl-symmetric depolarizing channel (equivalently:
//! "replace the targeted qudits with the maximally mixed state with
//! probability `d²p`"), all gate errors of a frame commute with one
//! another, and charging them at the end of the frame is *exactly* equal
//! to the virtual per-arity accounting the paper publishes — the
//! `decomposition_diff` differential suite pins that equality at ≤ 1e-9
//! against an independent oracle across every noise model.
//!
//! ## The pass-level knob
//!
//! Which accounting a simulation uses is selected by the compiler's
//! [`PassLevel`], threaded through [`TrajectoryConfig::level`] (and, one
//! layer up, through the `qudit-api` job façade):
//!
//! * [`PassLevel::Physical`] (default) — the lowered accounting above.
//! * [`PassLevel::NoisePreserving`] — the *logical* ablation: the circuit
//!   is left unlowered and every operation charges a single error on its
//!   own qudits (one two-qudit error on the first two qudits for ≥2-qudit
//!   operations), with idle durations from the unexpanded schedule. This is
//!   the optimistic baseline the paper's ablation compares against.
//! * The optimizing levels (`Ideal`, `PhysicalIdeal`) change which errors
//!   would be charged, so noisy runs reject them with a typed error.
//!
//! PR 4's deprecated `GateExpansion` virtual-accounting shim is gone; the
//! differential suite now carries its own oracle.

use crate::cancel::CancelToken;
use crate::error::{NoiseError, NoiseResult};
use crate::kraus::{Channel, CompiledChannel};
use crate::models::NoiseModel;
use qudit_circuit::passes::{self, CompiledIr, PassLevel};
use qudit_circuit::{Circuit, FrameDuration, FrameSchedule, Operation, Topology};
use qudit_core::{random_qubit_subspace_state, CoreError, StateVector};
use qudit_sim::{CompiledCircuit, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// The input-state distribution for each trial.
#[derive(Clone, Debug, PartialEq)]
pub enum InputState {
    /// A Haar-random state restricted to the qubit subspace of every qudit —
    /// the paper's circuits take qubit inputs and outputs.
    RandomQubitSubspace,
    /// The all-|1⟩ state (every control active), the worst case for
    /// propagating the |2⟩ temporary storage through the whole tree.
    AllOnes,
    /// A fixed basis state.
    Basis(Vec<usize>),
}

/// Configuration for a trajectory simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of Monte Carlo trials.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// The compiler pass level selecting the noise accounting:
    /// [`PassLevel::Physical`] (default) simulates the Di & Wei-lowered
    /// circuit; [`PassLevel::NoisePreserving`] is the logical-granularity
    /// ablation. Optimizing levels are rejected for noisy runs.
    pub level: PassLevel,
    /// Input-state distribution.
    pub input: InputState,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            trials: 100,
            seed: 2019,
            level: PassLevel::Physical,
            input: InputState::RandomQubitSubspace,
        }
    }
}

/// The result of a trajectory simulation: a Monte Carlo fidelity estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FidelityEstimate {
    /// Mean fidelity over the trials.
    pub mean: f64,
    /// Standard error of the mean (σ/√trials).
    pub std_error: f64,
    /// Number of trials.
    pub trials: usize,
}

impl FidelityEstimate {
    /// The paper reports `2σ` error bars; this is `2 × std_error`.
    pub fn two_sigma(&self) -> f64 {
        2.0 * self.std_error
    }

    /// The binomial error bar `√(F(1−F)/trials)`, floored by the
    /// rule-of-three bound `3/trials`: since per-trial fidelities lie in
    /// `[0, 1]`, the closed form bounds the standard error of the mean
    /// regardless of the per-trial distribution — but it collapses to
    /// exactly 0 at `F ∈ {0, 1}` (all-success or all-failure samples),
    /// claiming perfect certainty at any finite trial count. `3/n` is the
    /// 95% confidence bound on a probability after `n` trials with zero
    /// observed failures (or successes), so the floor keeps the bar honest
    /// in the near-deterministic regime; it is what the adaptive stopping
    /// rule and the cross-validation gate rely on never being zero.
    pub fn binomial_sigma(&self) -> f64 {
        let n = self.trials.max(1) as f64;
        let f = self.mean.clamp(0.0, 1.0);
        (f * (1.0 - f) / n).sqrt().max((3.0 / n).min(1.0))
    }

    /// The conservative error bar adaptive early-stopping compares against
    /// its target: the larger of the sample standard error and the floored
    /// binomial bound. Never zero at a finite trial count, so a sequential
    /// stopper cannot quit with false certainty after a lucky first chunk.
    pub fn conservative_sigma(&self) -> f64 {
        self.std_error.max(self.binomial_sigma())
    }
}

/// How many Monte Carlo trials a noisy run executes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Precision {
    /// Run exactly the configured trial count ([`TrajectoryConfig::trials`])
    /// — the pre-adaptive behaviour, bit-identical to it.
    FixedTrials,
    /// Sequential early stopping: run trials in chunks, accumulate the
    /// estimate via Welford merge, and stop as soon as the conservative
    /// error bar ([`FidelityEstimate::conservative_sigma`]) drops to
    /// `sigma` — with at least `min_trials` and at most `max_trials`
    /// trials. Trial `i` still uses `seed + i`, so the per-trial fidelity
    /// stream is bit-identical to the prefix of a fixed-count run.
    TargetSigma {
        /// The target standard error of the mean.
        sigma: f64,
        /// Never stop before this many trials (≥ 1).
        min_trials: usize,
        /// The trial budget: stop here even if the target is unmet.
        max_trials: usize,
    },
}

/// Streaming mean/variance accumulator (Welford's algorithm) with the
/// Chan et al. parallel merge — the aggregation behind adaptive
/// early-stopping. Merging per-chunk accumulators agrees with the
/// single-pass estimate over the concatenated samples to ≤ 1e-12 (pinned
/// by test).
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator in (Chan et al. pairwise update).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Samples accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The accumulated estimate, with the same degenerate-count rule as
    /// `estimate_from_samples`: at ≤ 1 sample the spread is unknown, so
    /// the standard error reports the floored binomial bound rather than a
    /// confident 0.
    pub fn estimate(&self) -> FidelityEstimate {
        let n = self.count.max(1) as f64;
        let base = FidelityEstimate {
            mean: self.mean,
            std_error: 0.0,
            trials: self.count,
        };
        let std_error = if self.count > 1 {
            // m2 is a sum of non-negative increments; max(0) only guards
            // against rounding driving a ~0 value epsilon-negative.
            (self.m2.max(0.0) / (n - 1.0) / n).sqrt()
        } else {
            base.binomial_sigma()
        };
        FidelityEstimate { std_error, ..base }
    }
}

/// One gate-error charge: a single-qudit or two-qudit channel application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ErrorSite {
    /// Charge the single-qudit gate-error channel to this qudit.
    Single(usize),
    /// Charge the two-qudit gate-error channel to this qudit pair.
    Pair([usize; 2]),
}

/// One frame of a [`NoiseProgram`]: the operations executed in it and the
/// idle duration charged after them.
#[derive(Clone, Debug)]
pub(crate) struct ProgramFrame {
    /// Indices into the program circuit's op list, in op order.
    pub(crate) ops: Vec<usize>,
    /// The frame's idle duration.
    pub(crate) duration: FrameDuration,
}

/// Everything a noise backend replays: the circuit (possibly lowered), its
/// frame partition, and the gate-error sites of every operation.
///
/// Both backends consume this one structure, so which errors are charged
/// where is defined in exactly one place and the two engines cannot drift
/// apart.
pub(crate) struct NoiseProgram {
    pub(crate) circuit: Circuit,
    pub(crate) frames: Vec<ProgramFrame>,
    /// Per-operation gate-error sites, index-aligned with the circuit.
    pub(crate) sites: Vec<Vec<ErrorSite>>,
    /// Per-frame qudit pairs a crosstalk-enabled model couples: sorted
    /// `u < v` pairs whose both endpoints are busy in the frame and — when
    /// the IR carries a topology — adjacent on it. Model-independent, so
    /// one program serves every model; models without crosstalk simply
    /// build no sites for these pairs.
    pub(crate) crosstalk_pairs: Vec<Vec<[usize; 2]>>,
    /// Per-edge error-rate multipliers from the IR's topology (sorted
    /// `u < v` keys; absent = 1.0): SWAPs and other two-qudit gates on a
    /// poor edge charge a proportionally scaled `p2`.
    pub(crate) edge_quality: HashMap<[usize; 2], f64>,
}

impl NoiseProgram {
    /// The default program: the circuit lowered through
    /// [`PassLevel::Physical`], with one gate error per lowered gate on the
    /// gate's own qudits and idle durations measured from the lowered frame
    /// schedule.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::Simulation`] if the circuit contains a
    /// ≥3-qudit operation the decomposition cannot lower (multi-target
    /// high-arity operations).
    pub(crate) fn physical(circuit: &Circuit) -> NoiseResult<NoiseProgram> {
        Self::from_ir(&passes::compile(circuit, PassLevel::Physical))
    }

    /// The logical-granularity ablation program: the circuit compiled
    /// through the (identity) [`PassLevel::NoisePreserving`] pipeline, with
    /// one error per operation on its own qudits (the first two qudits for
    /// ≥2-qudit operations) and idle durations from the unexpanded
    /// schedule. This is the optimistic baseline the paper's accounting
    /// ablation compares against.
    pub(crate) fn logical(circuit: &Circuit) -> NoiseProgram {
        let ir = passes::compile(circuit, PassLevel::NoisePreserving);
        Self::logical_from_ir(&ir)
    }

    /// Builds the program from an already-compiled IR, dispatching on the
    /// level the IR was compiled at: [`PassLevel::Physical`] yields the
    /// lowered accounting, [`PassLevel::NoisePreserving`] the logical
    /// ablation. This is the compile-once entry point the `qudit-api`
    /// executor's job cache uses — the expensive pass pipeline (including
    /// the Di & Wei eigendecompositions) runs once per structurally
    /// distinct circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::UnsupportedLevel`] for the optimizing levels
    /// and [`NoiseError::Simulation`] if a ≥3-qudit operation could not be
    /// lowered.
    pub(crate) fn from_ir(ir: &CompiledIr) -> NoiseResult<NoiseProgram> {
        match ir.report().level {
            PassLevel::NoisePreserving => Ok(Self::logical_from_ir(ir)),
            PassLevel::Physical => {
                let frames = ir
                    .frames()
                    .expect("the Physical pipeline always records frames");
                let circuit = ir.circuit().clone();
                if let Some(op) = circuit.iter().find(|op| op.arity() >= 3) {
                    return Err(NoiseError::Simulation {
                        reason: format!("operation {op} could not be lowered to arity ≤ 2"),
                    });
                }
                let sites = circuit.iter().map(uniform_sites).collect();
                let frames = program_frames(frames);
                let crosstalk_pairs = crosstalk_pairs(&circuit, &frames, ir.topology());
                Ok(NoiseProgram {
                    circuit,
                    frames,
                    sites,
                    crosstalk_pairs,
                    edge_quality: edge_quality_map(ir.topology()),
                })
            }
            level => Err(NoiseError::UnsupportedLevel {
                level: level.name(),
            }),
        }
    }

    fn logical_from_ir(ir: &CompiledIr) -> NoiseProgram {
        let frames = FrameSchedule::from_moments(ir.schedule(), false);
        let circuit = ir.circuit().clone();
        let sites = circuit.iter().map(logical_sites).collect();
        let frames = program_frames(&frames);
        let crosstalk_pairs = crosstalk_pairs(&circuit, &frames, ir.topology());
        NoiseProgram {
            circuit,
            frames,
            sites,
            crosstalk_pairs,
            edge_quality: edge_quality_map(ir.topology()),
        }
    }

    /// Every qudit pair the program's gate errors charge, in first-use
    /// order.
    fn charged_pairs(&self) -> Vec<[usize; 2]> {
        let mut seen = std::collections::HashSet::new();
        let mut pairs = Vec::new();
        for sites in &self.sites {
            for site in sites {
                if let ErrorSite::Pair(pair) = site {
                    if seen.insert(*pair) {
                        pairs.push(*pair);
                    }
                }
            }
        }
        pairs
    }

    /// Every distinct frame duration, in first-use order.
    fn durations(&self) -> Vec<FrameDuration> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for frame in &self.frames {
            if seen.insert(frame.duration) {
                out.push(frame.duration);
            }
        }
        out
    }
}

/// The qudit pairs crosstalk couples in each frame: every sorted pair of
/// qudits that are both busy (touched by one of the frame's operations),
/// restricted to topology-adjacent pairs when the IR carries a topology.
/// Without one the job compiled all-to-all, where every simultaneously
/// driven pair is a neighbour.
fn crosstalk_pairs(
    circuit: &Circuit,
    frames: &[ProgramFrame],
    topology: Option<&Topology>,
) -> Vec<Vec<[usize; 2]>> {
    frames
        .iter()
        .map(|frame| {
            let mut busy: Vec<usize> = frame
                .ops
                .iter()
                .flat_map(|&op_idx| circuit.operations()[op_idx].qudits())
                .collect();
            busy.sort_unstable();
            busy.dedup();
            let mut pairs = Vec::new();
            for (i, &u) in busy.iter().enumerate() {
                for &v in &busy[i + 1..] {
                    if topology.is_none_or(|t| t.is_adjacent(u, v)) {
                        pairs.push([u, v]);
                    }
                }
            }
            pairs
        })
        .collect()
}

/// The per-edge error-rate multipliers of the IR's topology as a sorted-key
/// map; empty when there is no topology or its edge weights are uniform.
fn edge_quality_map(topology: Option<&Topology>) -> HashMap<[usize; 2], f64> {
    let Some(topology) = topology else {
        return HashMap::new();
    };
    let weights = topology.edge_quality();
    if weights.is_empty() {
        return HashMap::new();
    }
    topology
        .edges()
        .into_iter()
        .zip(weights.iter().copied())
        .map(|((u, v), q)| ([u, v], q))
        .collect()
}

/// The uniform (physical) site rule: a gate charges one error on its own
/// qudits. No arity dispatch — the compiler guarantees arity ≤ 2.
fn uniform_sites(op: &Operation) -> Vec<ErrorSite> {
    let qudits = op.qudits();
    match qudits.len() {
        0 => Vec::new(),
        1 => vec![ErrorSite::Single(qudits[0])],
        2 => vec![ErrorSite::Pair([qudits[0], qudits[1]])],
        _ => unreachable!("physical programs are lowered to arity ≤ 2"),
    }
}

/// The logical-ablation site rule: one error per operation regardless of
/// arity — single-qudit channel for 1-qudit ops, one two-qudit channel on
/// the first two qudits otherwise.
fn logical_sites(op: &Operation) -> Vec<ErrorSite> {
    let qudits = op.qudits();
    match qudits.len() {
        0 => Vec::new(),
        1 => vec![ErrorSite::Single(qudits[0])],
        _ => vec![ErrorSite::Pair([qudits[0], qudits[1]])],
    }
}

fn program_frames(frames: &FrameSchedule) -> Vec<ProgramFrame> {
    frames
        .frames()
        .iter()
        .map(|f| ProgramFrame {
            ops: f.op_indices().to_vec(),
            duration: f.duration(),
        })
        .collect()
}

/// The idle duration of a frame in seconds under a model: single-qudit
/// frames last one single-qudit gate time, `k`-layer frames `k` two-qudit
/// gate times.
fn duration_seconds(duration: FrameDuration, model: &NoiseModel) -> f64 {
    match duration {
        FrameDuration::SingleQudit => model.gate_time_1q,
        FrameDuration::TwoQuditLayers(k) => k as f64 * model.gate_time_2q,
    }
}

/// Noise channels materialised per application *site*: one artifact per
/// qudit for single-qudit channels, one per qudit pair the program can
/// touch for two-qudit channels, and one per (frame duration, qudit) for
/// idle channels. Built once per run; the replay loops only look up and
/// apply.
///
/// `T` is the backend-specific per-site artifact: [`CompiledChannel`]
/// (branch plans) for the trajectory engine, a superoperator
/// [`ApplyPlan`](qudit_sim::ApplyPlan) for the exact engine. Both engines
/// build through [`build_noise_sites`], so which channels exist at which
/// sites is defined in exactly one place.
pub(crate) struct NoiseSites<T> {
    /// Single-qudit gate-error channel, indexed by qudit.
    pub(crate) single_gate: Vec<T>,
    /// Two-qudit gate-error channel, keyed by the (ordered) qudit pair.
    pub(crate) two_gate: HashMap<[usize; 2], T>,
    /// Idle channels per frame duration, each a per-qudit vector. Empty
    /// when the model has no `T1`.
    pub(crate) idle: HashMap<FrameDuration, Vec<T>>,
    /// Crosstalk channels keyed by `(frame duration, sorted qudit pair)` —
    /// the accumulated ZZ phase depends on how long the frame lasts. Empty
    /// when the model has no crosstalk.
    pub(crate) crosstalk: HashMap<(FrameDuration, [usize; 2]), T>,
}

impl<T> NoiseSites<T> {
    /// Applies `f` to every gate-error site of one operation, resolving
    /// the per-site artifact.
    pub(crate) fn for_op_sites(&self, sites: &[ErrorSite], mut f: impl FnMut(&T)) {
        for site in sites {
            match site {
                ErrorSite::Single(q) => f(&self.single_gate[*q]),
                ErrorSite::Pair(pair) => f(self
                    .two_gate
                    .get(pair)
                    .expect("pair compiled at construction")),
            }
        }
    }
}

/// Builds the per-site noise artifacts for a (program, model) pair, with
/// `build` turning each `(channel, qudit set)` into the backend-specific
/// artifact.
///
/// # Errors
///
/// Propagates model-validation failures from channel construction.
pub(crate) fn build_noise_sites<T>(
    program: &NoiseProgram,
    model: &NoiseModel,
    mut build: impl FnMut(&Channel, &[usize]) -> T,
) -> NoiseResult<NoiseSites<T>> {
    let d = program.circuit.dim();
    let n = program.circuit.width();
    let single_gate = model.single_qudit_gate_error(d)?;
    let two_gate = model.two_qudit_gate_error(d)?;
    let single_sites: Vec<T> = (0..n).map(|q| build(&single_gate, &[q])).collect();
    let mut two_sites: HashMap<[usize; 2], T> = HashMap::new();
    for pair in program.charged_pairs() {
        // Edge-quality weights key on the undirected edge; charged pairs
        // keep op order (control, target).
        let edge = [pair[0].min(pair[1]), pair[0].max(pair[1])];
        let scale = program.edge_quality.get(&edge).copied().unwrap_or(1.0);
        let site = if scale == 1.0 {
            build(&two_gate, &pair)
        } else {
            build(&model.two_qudit_gate_error_scaled(d, scale)?, &pair)
        };
        two_sites.insert(pair, site);
    }
    let mut idle = HashMap::new();
    for duration in program.durations() {
        if let Some(channel) = model.idle_error(d, duration_seconds(duration, model))? {
            let sites: Vec<T> = (0..n).map(|q| build(&channel, &[q])).collect();
            idle.insert(duration, sites);
        }
    }
    let mut crosstalk = HashMap::new();
    if model.crosstalk.is_some() {
        for (frame, pairs) in program.frames.iter().zip(&program.crosstalk_pairs) {
            for &pair in pairs {
                let key = (frame.duration, pair);
                if crosstalk.contains_key(&key) {
                    continue;
                }
                let channel = model
                    .crosstalk_error(d, duration_seconds(frame.duration, model))?
                    .expect("crosstalk parameter checked above");
                crosstalk.insert(key, build(&channel, &pair));
            }
        }
    }
    Ok(NoiseSites {
        single_gate: single_sites,
        two_gate: two_sites,
        idle,
        crosstalk,
    })
}

/// A trajectory noise simulator bound to a circuit and a noise model.
///
/// Construction compiles a `NoiseProgram` (physically lowered by
/// default), compiles the program circuit into per-operation apply plans
/// ([`CompiledCircuit`]) *and* precompiles every noise channel per
/// application site (`NoiseSites`); both are shared by every trial, so a
/// Monte Carlo run does zero plan building inside its trial loop. Trials
/// already run one per core, so gate application inside a trial is
/// deliberately sequential — nested fan-out would oversubscribe the
/// machine.
pub struct TrajectorySimulator<'a> {
    program: Arc<NoiseProgram>,
    compiled: Arc<CompiledCircuit>,
    model: &'a NoiseModel,
    channels: Arc<NoiseSites<CompiledChannel>>,
}

impl<'a> TrajectorySimulator<'a> {
    /// Builds a trajectory simulator on the physically lowered circuit —
    /// the default accounting.
    ///
    /// # Errors
    ///
    /// Returns an error if the model parameters are unphysical for the
    /// circuit's qudit dimension, or the circuit cannot be lowered.
    pub fn new(circuit: &Circuit, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program(NoiseProgram::physical(circuit)?, model)
    }

    /// Builds a trajectory simulator on the logical-granularity ablation
    /// accounting (one error per unlowered operation; the optimistic
    /// baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the model parameters are unphysical for the
    /// circuit's qudit dimension.
    pub fn logical(circuit: &Circuit, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program(NoiseProgram::logical(circuit), model)
    }

    /// Builds the simulator a pass level selects: [`PassLevel::Physical`]
    /// → the lowered accounting, [`PassLevel::NoisePreserving`] → the
    /// logical ablation. The single dispatch point behind
    /// [`simulate_fidelity`] and the [`Backend`](crate::Backend) trait.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::UnsupportedLevel`] for the optimizing levels
    /// (`Ideal`, `PhysicalIdeal`), which change which errors would be
    /// charged; otherwise the same conditions as
    /// [`TrajectorySimulator::new`].
    pub fn with_level(
        circuit: &Circuit,
        model: &'a NoiseModel,
        level: PassLevel,
    ) -> NoiseResult<Self> {
        match level {
            PassLevel::Physical => Self::new(circuit, model),
            PassLevel::NoisePreserving => Self::logical(circuit, model),
            level => Err(NoiseError::UnsupportedLevel {
                level: level.name(),
            }),
        }
    }

    /// Builds the simulator from an already-compiled IR (see
    /// [`qudit_circuit::passes::compile`]), skipping the pass pipeline: the
    /// accounting follows the level the IR was compiled at. This is the
    /// entry point the `qudit-api` executor's structure-keyed job cache
    /// uses to compile each distinct circuit once per batch.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::UnsupportedLevel`] if the IR was compiled at
    /// an optimizing level, or an error if the model parameters are
    /// unphysical for the circuit's qudit dimension.
    pub fn from_compiled(ir: &CompiledIr, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program(NoiseProgram::from_ir(ir)?, model)
    }

    /// Like [`TrajectorySimulator::from_compiled`], but gate plans compile
    /// through the caller's [`Simulator`] plan cache, so repeated
    /// constructions over the same circuit (a batch of jobs differing only
    /// in noise model or seed) share one plan set instead of each building
    /// their own.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrajectorySimulator::from_compiled`].
    pub fn from_compiled_with(
        ir: &CompiledIr,
        model: &'a NoiseModel,
        planner: &Simulator,
    ) -> NoiseResult<Self> {
        Self::from_program_with(NoiseProgram::from_ir(ir)?, model, planner)
    }

    fn from_program(program: NoiseProgram, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program_with(program, model, &Simulator::new())
    }

    /// Builds the simulator on memoized shared artifacts (see
    /// [`SharedNoiseArtifacts`](crate::SharedNoiseArtifacts)): the noise
    /// program, the compiled replay and the per-site channel plans are all
    /// shared — repeated constructions over the same cached circuit entry
    /// (a batch of jobs differing only in seed or trial count) build
    /// nothing at all.
    ///
    /// # Errors
    ///
    /// Propagates model-validation failures from channel construction.
    pub fn from_artifacts_with(
        artifacts: &crate::SharedNoiseArtifacts,
        model: &'a NoiseModel,
        planner: &Simulator,
    ) -> NoiseResult<Self> {
        Ok(TrajectorySimulator {
            program: Arc::clone(artifacts.program()),
            compiled: artifacts.ideal(planner),
            model,
            channels: artifacts.trajectory_sites(model)?,
        })
    }

    fn from_program_with(
        program: NoiseProgram,
        model: &'a NoiseModel,
        planner: &Simulator,
    ) -> NoiseResult<Self> {
        let d = program.circuit.dim();
        let n = program.circuit.width();
        let channels = build_noise_sites(&program, model, |c, qudits| c.compile(d, n, qudits))?;
        Ok(TrajectorySimulator {
            // Compile through a Simulator so structurally equal gates (the
            // mirrored compute/uncompute halves, the repeated Di & Wei
            // block gates) share one plan instead of each building their
            // own — and, with a caller-held planner, across simulators.
            compiled: Arc::new(planner.compile(&program.circuit)),
            program: Arc::new(program),
            model,
            channels: Arc::new(channels),
        })
    }

    /// The noise model in use.
    pub fn model(&self) -> &NoiseModel {
        self.model
    }

    /// Draws an initial state according to the configured input kind.
    fn draw_input<R: Rng + ?Sized>(
        &self,
        input: &InputState,
        rng: &mut R,
    ) -> Result<StateVector, CoreError> {
        let d = self.program.circuit.dim();
        let n = self.program.circuit.width();
        match input {
            InputState::RandomQubitSubspace => random_qubit_subspace_state(d, n, rng),
            InputState::AllOnes => StateVector::from_basis_state(d, &vec![1usize; n]),
            InputState::Basis(digits) => StateVector::from_basis_state(d, digits),
        }
    }

    /// Runs a single trajectory trial and returns the fidelity between the
    /// ideal and noisy outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if the requested input state is invalid for the
    /// circuit.
    pub fn run_trial(&self, input: &InputState, seed: u64) -> Result<f64, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = self.draw_input(input, &mut rng)?;
        match self.trial_from(initial, &mut rng, &CancelToken::never()) {
            Ok(fidelity) => Ok(fidelity),
            Err(_) => unreachable!("the never token cannot cancel a trial"),
        }
    }

    /// Like [`TrajectorySimulator::run_trial`], but checks `cancel` before
    /// the trial and between frames, so an expired deadline stops the
    /// simulation mid-circuit instead of after it.
    ///
    /// # Errors
    ///
    /// [`NoiseError::Cancelled`] once the token trips; otherwise the same
    /// conditions as [`TrajectorySimulator::run_trial`].
    pub fn run_trial_cancellable(
        &self,
        input: &InputState,
        seed: u64,
        cancel: &CancelToken,
    ) -> NoiseResult<f64> {
        cancel.check()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = self.draw_input(input, &mut rng)?;
        self.trial_from(initial, &mut rng, cancel)
    }

    /// The trial body shared by the cancellable and infallible entry points:
    /// ideal + noisy evolution from a drawn initial state. Only possible
    /// error is [`NoiseError::Cancelled`].
    fn trial_from(
        &self,
        initial: StateVector,
        rng: &mut StdRng,
        cancel: &CancelToken,
    ) -> NoiseResult<f64> {
        // Ideal (noise-free) evolution, through the shared compiled plans.
        let ideal = self.compiled.run_sequential(initial.clone());

        // Noisy evolution, frame by frame: unitaries, then the frame's
        // gate errors, then the idle error for the frame's duration, then
        // the crosstalk phases between the frame's busy adjacent pairs.
        let mut noisy = initial;
        for (frame_idx, frame) in self.program.frames.iter().enumerate() {
            cancel.check()?;
            for &op_idx in &frame.ops {
                self.compiled.plan(op_idx).apply_sequential(&mut noisy);
            }
            for &op_idx in &frame.ops {
                self.channels
                    .for_op_sites(&self.program.sites[op_idx], |site| {
                        site.apply_trajectory(&mut noisy, rng);
                    });
            }
            if let Some(sites) = self.channels.idle.get(&frame.duration) {
                for site in sites {
                    site.apply_trajectory(&mut noisy, rng);
                }
            }
            if !self.channels.crosstalk.is_empty() {
                for pair in &self.program.crosstalk_pairs[frame_idx] {
                    if let Some(site) = self.channels.crosstalk.get(&(frame.duration, *pair)) {
                        site.apply_trajectory(&mut noisy, rng);
                    }
                }
            }
            noisy.renormalize();
        }

        Ok(ideal.fidelity(&noisy))
    }

    /// Runs `config.trials` trajectory trials (in parallel) and aggregates a
    /// fidelity estimate.
    ///
    /// # Errors
    ///
    /// Returns an error if the input specification is invalid for the
    /// circuit.
    pub fn run(&self, config: &TrajectoryConfig) -> NoiseResult<FidelityEstimate> {
        self.run_cancellable(config, &CancelToken::never())
    }

    /// Like [`TrajectorySimulator::run`], but every trial checks `cancel`
    /// between frames; parallel workers short-circuit on the first
    /// [`NoiseError::Cancelled`].
    ///
    /// # Errors
    ///
    /// [`NoiseError::Cancelled`] once the token trips; otherwise the same
    /// conditions as [`TrajectorySimulator::run`].
    pub fn run_cancellable(
        &self,
        config: &TrajectoryConfig,
        cancel: &CancelToken,
    ) -> NoiseResult<FidelityEstimate> {
        let fidelities = self.trial_chunk(config, 0..config.trials, cancel)?;
        Ok(estimate_from_samples(&fidelities))
    }

    /// Runs the trials of one index range in parallel, in index order:
    /// trial `i` uses `seed + i`, so any range's fidelities are exactly the
    /// corresponding slice of a full run's per-trial stream.
    fn trial_chunk(
        &self,
        config: &TrajectoryConfig,
        range: std::ops::Range<usize>,
        cancel: &CancelToken,
    ) -> NoiseResult<Vec<f64>> {
        range
            .into_par_iter()
            .map(|i| {
                self.run_trial_cancellable(
                    &config.input,
                    config.seed.wrapping_add(i as u64),
                    cancel,
                )
            })
            .collect()
    }

    /// Runs with the requested [`Precision`]: [`Precision::FixedTrials`]
    /// is exactly [`TrajectorySimulator::run_cancellable`] (bit-identical
    /// aggregation included); [`Precision::TargetSigma`] runs the chunked
    /// sequential early-stopper — see [`run_traced`](Self::run_traced) for
    /// the loop's contract.
    ///
    /// # Errors
    ///
    /// [`NoiseError::Cancelled`] once the token trips; otherwise the same
    /// conditions as [`TrajectorySimulator::run`].
    pub fn run_with_precision(
        &self,
        config: &TrajectoryConfig,
        precision: &Precision,
        cancel: &CancelToken,
    ) -> NoiseResult<FidelityEstimate> {
        self.run_precision_impl(config, precision, cancel, None)
    }

    /// Like [`TrajectorySimulator::run_with_precision`], but also returns
    /// the per-trial fidelity stream the run actually consumed, in trial
    /// order — the diagnostic surface the prefix-determinism tests compare
    /// bit-for-bit: an early-stopped run's stream is exactly the first
    /// `trials` entries of a fixed-count run's stream for the same seed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrajectorySimulator::run_with_precision`].
    pub fn run_traced(
        &self,
        config: &TrajectoryConfig,
        precision: &Precision,
        cancel: &CancelToken,
    ) -> NoiseResult<(FidelityEstimate, Vec<f64>)> {
        let mut trace = Vec::new();
        let estimate = self.run_precision_impl(config, precision, cancel, Some(&mut trace))?;
        Ok((estimate, trace))
    }

    fn run_precision_impl(
        &self,
        config: &TrajectoryConfig,
        precision: &Precision,
        cancel: &CancelToken,
        mut trace: Option<&mut Vec<f64>>,
    ) -> NoiseResult<FidelityEstimate> {
        let (sigma, min_trials, max_trials) = match *precision {
            Precision::FixedTrials => {
                let samples = self.trial_chunk(config, 0..config.trials, cancel)?;
                let estimate = estimate_from_samples(&samples);
                if let Some(trace) = trace {
                    *trace = samples;
                }
                return Ok(estimate);
            }
            Precision::TargetSigma {
                sigma,
                min_trials,
                max_trials,
            } => (sigma, min_trials.max(1), max_trials.max(min_trials.max(1))),
        };
        let mut agg = Welford::new();
        let mut done = 0usize;
        // First chunk covers min_trials; afterwards the total doubles per
        // round (bounding overshoot past the optimal stopping point to
        // 2×), capped so one round stays a responsive unit of work.
        let mut next = min_trials.min(max_trials);
        while done < max_trials {
            let end = (done + next).min(max_trials);
            let samples = self.trial_chunk(config, done..end, cancel)?;
            let mut chunk = Welford::new();
            for &f in &samples {
                chunk.push(f);
            }
            agg.merge(&chunk);
            if let Some(trace) = trace.as_deref_mut() {
                trace.extend_from_slice(&samples);
            }
            done = end;
            if done >= min_trials && agg.estimate().conservative_sigma() <= sigma {
                break;
            }
            next = done.min(MAX_ADAPTIVE_CHUNK);
        }
        Ok(agg.estimate())
    }
}

/// The largest trial chunk one adaptive round schedules at once: big enough
/// to saturate the worker pool, small enough that the stopping rule gets a
/// look-in at a bounded cadence even when the target needs many trials.
const MAX_ADAPTIVE_CHUNK: usize = 4096;

/// Convenience entry point: simulate `circuit` under `model` with the given
/// configuration. `config.level` selects the accounting:
/// [`PassLevel::Physical`] (default) simulates the physically lowered
/// circuit, [`PassLevel::NoisePreserving`] the logical ablation baseline.
///
/// # Errors
///
/// Returns an error if the model is unphysical for the circuit dimension,
/// the level does not support noise, or the input specification is invalid.
pub fn simulate_fidelity(
    circuit: &Circuit,
    model: &NoiseModel,
    config: &TrajectoryConfig,
) -> Result<FidelityEstimate, Box<dyn std::error::Error + Send + Sync>> {
    let sim = TrajectorySimulator::with_level(circuit, model, config.level)?;
    Ok(sim.run(config)?)
}

pub(crate) fn estimate_from_samples(samples: &[f64]) -> FidelityEstimate {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() <= 1 {
        // One sample says nothing about spread: report the floored
        // binomial bound ("unknown, bounded by rule-of-three") instead of
        // a confidently-zero error bar.
        let base = FidelityEstimate {
            mean,
            std_error: 0.0,
            trials: samples.len(),
        };
        return FidelityEstimate {
            std_error: base.binomial_sigma(),
            ..base
        };
    }
    let var = samples.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / (n - 1.0);
    FidelityEstimate {
        mean,
        std_error: (var / n).sqrt(),
        trials: samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{sc, sc_t1_gates};
    use qudit_circuit::{Control, Gate};

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    fn noiseless_model() -> NoiseModel {
        NoiseModel {
            name: "NOISELESS".to_string(),
            p1: 0.0,
            p2: 0.0,
            t1: None,
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
            leak_rate: None,
            overrotation: None,
            crosstalk: None,
        }
    }

    #[test]
    fn noiseless_model_gives_unit_fidelity() {
        let c = toffoli_fig4();
        let model = noiseless_model();
        let config = TrajectoryConfig {
            trials: 5,
            ..TrajectoryConfig::default()
        };
        let est = simulate_fidelity(&c, &model, &config).unwrap();
        assert!((est.mean - 1.0).abs() < 1e-9, "mean {}", est.mean);
        assert!(est.std_error < 1e-9);
    }

    #[test]
    fn noiseless_model_gives_unit_fidelity_on_lowered_three_qudit_ops() {
        // A genuine ≥3-qudit operation: the lowering must preserve the
        // unitary, so a noiseless run still returns fidelity 1.
        let mut c = Circuit::new(3, 3);
        c.push_controlled(
            Gate::increment(3),
            &[Control::on_one(0), Control::on_two(1)],
            &[2],
        )
        .unwrap();
        let config = TrajectoryConfig {
            trials: 5,
            ..TrajectoryConfig::default()
        };
        let est = simulate_fidelity(&c, &noiseless_model(), &config).unwrap();
        assert!((est.mean - 1.0).abs() < 1e-9, "mean {}", est.mean);
    }

    #[test]
    fn noisy_model_reduces_fidelity_but_not_below_zero() {
        let c = toffoli_fig4();
        let model = sc();
        let config = TrajectoryConfig {
            trials: 20,
            seed: 7,
            ..TrajectoryConfig::default()
        };
        let est = simulate_fidelity(&c, &model, &config).unwrap();
        assert!(est.mean <= 1.0 + 1e-12);
        assert!(est.mean >= 0.0);
        // A 3-qutrit circuit under the SC model should still be quite good.
        assert!(est.mean > 0.9, "mean fidelity {}", est.mean);
    }

    #[test]
    fn better_hardware_gives_better_fidelity() {
        let c = toffoli_fig4();
        let config = TrajectoryConfig {
            trials: 40,
            seed: 11,
            ..TrajectoryConfig::default()
        };
        let bad = NoiseModel {
            name: "BAD".to_string(),
            p1: 1e-3,
            p2: 1e-3,
            t1: Some(1e-4),
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
            leak_rate: None,
            overrotation: None,
            crosstalk: None,
        };
        let worse = simulate_fidelity(&c, &bad, &config).unwrap();
        let better = simulate_fidelity(&c, &sc_t1_gates(), &config).unwrap();
        assert!(
            better.mean > worse.mean,
            "better {} vs worse {}",
            better.mean,
            worse.mean
        );
    }

    #[test]
    fn all_ones_input_is_deterministic_per_seed() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = TrajectorySimulator::new(&c, &model).unwrap();
        let f1 = sim.run_trial(&InputState::AllOnes, 99).unwrap();
        let f2 = sim.run_trial(&InputState::AllOnes, 99).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn a_tripped_token_cancels_the_run() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = TrajectorySimulator::new(&c, &model).unwrap();
        let config = TrajectoryConfig {
            trials: 64,
            ..TrajectoryConfig::default()
        };
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            sim.run_cancellable(&config, &token),
            Err(NoiseError::Cancelled)
        );
        // The never token leaves results identical to the plain entry point.
        let plain = sim.run(&config).unwrap();
        let never = sim.run_cancellable(&config, &CancelToken::never()).unwrap();
        assert_eq!(plain.mean, never.mean);
    }

    #[test]
    fn physical_accounting_is_noisier_than_the_logical_ablation() {
        // Build a circuit with a genuine 3-qutrit operation.
        let mut c = Circuit::new(3, 3);
        for _ in 0..4 {
            c.push_controlled(
                Gate::increment(3),
                &[Control::on_one(0), Control::on_two(1)],
                &[2],
            )
            .unwrap();
        }
        let model = NoiseModel {
            name: "MODERATE".to_string(),
            p1: 2e-4,
            p2: 2e-4,
            t1: Some(1e-3),
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
            leak_rate: None,
            overrotation: None,
            crosstalk: None,
        };
        let config_base = TrajectoryConfig {
            trials: 60,
            seed: 5,
            level: PassLevel::NoisePreserving,
            input: InputState::AllOnes,
        };
        let logical = simulate_fidelity(&c, &model, &config_base).unwrap();
        let physical = simulate_fidelity(
            &c,
            &model,
            &TrajectoryConfig {
                level: PassLevel::Physical,
                ..config_base
            },
        )
        .unwrap();
        assert!(
            physical.mean < logical.mean,
            "physical {} should be below logical {}",
            physical.mean,
            logical.mean
        );
    }

    #[test]
    fn optimizing_levels_are_rejected_for_noisy_runs() {
        let c = toffoli_fig4();
        let model = sc();
        for level in [PassLevel::Ideal, PassLevel::PhysicalIdeal] {
            match TrajectorySimulator::with_level(&c, &model, level) {
                Err(NoiseError::UnsupportedLevel { .. }) => {}
                Err(other) => panic!("wrong error: {other}"),
                Ok(_) => panic!("{} must be rejected for noisy runs", level.name()),
            }
        }
    }

    #[test]
    fn physical_program_charges_one_site_per_lowered_gate() {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(
            Gate::increment(3),
            &[Control::on_one(0), Control::on_two(1)],
            &[2],
        )
        .unwrap();
        let program = NoiseProgram::physical(&c).unwrap();
        assert_eq!(program.circuit.len(), 13, "6 two-qudit + 7 single-qudit");
        let pairs = program
            .sites
            .iter()
            .flatten()
            .filter(|s| matches!(s, ErrorSite::Pair(_)))
            .count();
        let singles = program
            .sites
            .iter()
            .flatten()
            .filter(|s| matches!(s, ErrorSite::Single(_)))
            .count();
        assert_eq!(pairs, 6);
        assert_eq!(singles, 7);
        assert_eq!(program.frames.len(), 1);
        assert_eq!(program.frames[0].duration, FrameDuration::TwoQuditLayers(6));
    }

    #[test]
    fn logical_program_charges_one_site_per_operation() {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(
            Gate::increment(3),
            &[Control::on_one(0), Control::on_two(1)],
            &[2],
        )
        .unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        let program = NoiseProgram::logical(&c);
        assert_eq!(program.circuit.len(), 2, "no lowering at the logical level");
        assert_eq!(program.sites[0], vec![ErrorSite::Pair([0, 1])]);
        assert_eq!(program.sites[1], vec![ErrorSite::Single(0)]);
        // The ≥3-qudit moment lasts one two-qudit layer (no expansion).
        assert_eq!(program.frames[0].duration, FrameDuration::TwoQuditLayers(1));
    }

    #[test]
    fn estimate_from_samples_computes_mean_and_stderr() {
        let est = estimate_from_samples(&[1.0, 0.0]);
        assert!((est.mean - 0.5).abs() < 1e-12);
        assert!(est.std_error > 0.0);
        assert_eq!(est.trials, 2);
        assert!((est.two_sigma() - 2.0 * est.std_error).abs() < 1e-15);
    }

    #[test]
    fn binomial_sigma_matches_the_closed_form() {
        let est = FidelityEstimate {
            mean: 0.75,
            std_error: 0.01,
            trials: 100,
        };
        let expected = (0.75f64 * 0.25 / 100.0).sqrt();
        assert!((est.binomial_sigma() - expected).abs() < 1e-15);
    }

    #[test]
    fn binomial_sigma_is_floored_at_degenerate_means() {
        // Regression: successes ∈ {0, trials} used to report σ = 0 —
        // perfect certainty at any finite trial count. The rule-of-three
        // floor keeps the bar honest.
        for mean in [0.0, 1.0] {
            for trials in [1usize, 10, 100, 10_000] {
                let est = FidelityEstimate {
                    mean,
                    std_error: 0.0,
                    trials,
                };
                let expected = (3.0 / trials as f64).min(1.0);
                assert!(
                    (est.binomial_sigma() - expected).abs() < 1e-15,
                    "mean {mean} trials {trials}: {}",
                    est.binomial_sigma()
                );
            }
        }
        // The floor only ever loosens: once the closed form exceeds 3/n, a
        // non-degenerate mean keeps its closed-form value.
        let est = FidelityEstimate {
            mean: 0.5,
            std_error: 0.0,
            trials: 100,
        };
        assert!((est.binomial_sigma() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn single_sample_std_error_reports_the_binomial_floor_not_zero() {
        let est = estimate_from_samples(&[0.97]);
        assert_eq!(est.trials, 1);
        assert!((est.mean - 0.97).abs() < 1e-15);
        // One sample says nothing about the spread; the old code reported
        // std_error = 0 here.
        assert!(est.std_error > 0.0);
        assert!((est.std_error - est.binomial_sigma()).abs() < 1e-15);
    }

    #[test]
    fn welford_merge_matches_single_pass_to_1e12() {
        let samples: Vec<f64> = (0..257)
            .map(|i| 0.5 + 0.4 * ((i as f64) * 0.7).sin())
            .collect();
        let single = estimate_from_samples(&samples);
        // Merge in uneven chunks, as the adaptive loop does.
        let mut agg = Welford::new();
        for chunk in samples.chunks(37) {
            let mut w = Welford::new();
            for &x in chunk {
                w.push(x);
            }
            agg.merge(&w);
        }
        let merged = agg.estimate();
        assert_eq!(merged.trials, single.trials);
        assert!((merged.mean - single.mean).abs() <= 1e-12);
        assert!((merged.std_error - single.std_error).abs() <= 1e-12);
    }

    #[test]
    fn fixed_trials_precision_is_bit_identical_to_run_cancellable() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = TrajectorySimulator::new(&c, &model).unwrap();
        let config = TrajectoryConfig {
            trials: 24,
            seed: 3,
            ..TrajectoryConfig::default()
        };
        let token = CancelToken::never();
        let fixed = sim.run_cancellable(&config, &token).unwrap();
        let via_precision = sim
            .run_with_precision(&config, &Precision::FixedTrials, &token)
            .unwrap();
        assert_eq!(fixed.mean.to_bits(), via_precision.mean.to_bits());
        assert_eq!(fixed.std_error.to_bits(), via_precision.std_error.to_bits());
        assert_eq!(fixed.trials, via_precision.trials);
    }

    #[test]
    fn adaptive_run_does_not_stop_early_on_a_noiseless_circuit() {
        // Every trial returns fidelity 1, so the sample variance is 0 —
        // exactly the false-certainty trap the binomial floor exists for.
        // At σ = 0.05 the rule-of-three floor 3/n forces n ≥ 60 trials.
        let c = toffoli_fig4();
        let model = noiseless_model();
        let sim = TrajectorySimulator::new(&c, &model).unwrap();
        let config = TrajectoryConfig {
            trials: 10_000,
            ..TrajectoryConfig::default()
        };
        let precision = Precision::TargetSigma {
            sigma: 0.05,
            min_trials: 8,
            max_trials: 4096,
        };
        let est = sim
            .run_with_precision(&config, &precision, &CancelToken::never())
            .unwrap();
        assert!(est.trials >= 60, "stopped at {} trials", est.trials);
        assert!(est.conservative_sigma() <= 0.05);
        assert!((est.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_run_respects_the_trial_bounds() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = TrajectorySimulator::new(&c, &model).unwrap();
        let config = TrajectoryConfig {
            trials: 10_000,
            seed: 13,
            ..TrajectoryConfig::default()
        };
        // An unreachable target pins the run to max_trials.
        let capped = sim
            .run_with_precision(
                &config,
                &Precision::TargetSigma {
                    sigma: 1e-9,
                    min_trials: 4,
                    max_trials: 40,
                },
                &CancelToken::never(),
            )
            .unwrap();
        assert_eq!(capped.trials, 40);
        // A trivially loose target still honours min_trials.
        let floored = sim
            .run_with_precision(
                &config,
                &Precision::TargetSigma {
                    sigma: 0.9,
                    min_trials: 16,
                    max_trials: 4096,
                },
                &CancelToken::never(),
            )
            .unwrap();
        assert!(floored.trials >= 16, "ran {} trials", floored.trials);
    }

    #[test]
    fn traced_adaptive_stream_is_a_prefix_of_the_fixed_run() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = TrajectorySimulator::new(&c, &model).unwrap();
        let config = TrajectoryConfig {
            trials: 512,
            seed: 21,
            ..TrajectoryConfig::default()
        };
        let token = CancelToken::never();
        let (_, fixed_stream) = sim
            .run_traced(&config, &Precision::FixedTrials, &token)
            .unwrap();
        let (est, adaptive_stream) = sim
            .run_traced(
                &config,
                &Precision::TargetSigma {
                    sigma: 0.02,
                    min_trials: 8,
                    max_trials: 512,
                },
                &token,
            )
            .unwrap();
        assert_eq!(est.trials, adaptive_stream.len());
        assert!(adaptive_stream.len() <= fixed_stream.len());
        for (i, (a, f)) in adaptive_stream.iter().zip(&fixed_stream).enumerate() {
            assert_eq!(a.to_bits(), f.to_bits(), "trial {i} diverged");
        }
    }
}
