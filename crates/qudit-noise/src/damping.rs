//! Amplitude-damping (T1 relaxation) idle-error channels (Appendix A.1.2).
//!
//! Idle errors model the relaxation of excited states towards |0⟩ during the
//! time a qudit spends waiting. For qubits the single decay path |1⟩ → |0⟩
//! occurs with probability `λ1`; for qutrits the paper additionally models
//! |2⟩ → |0⟩ decay with probability `λ2`, using the Kraus operators of its
//! Equation 8. The damping probabilities follow `λ_m = 1 − e^{−m·Δt/T1}`
//! (Equation 9), so they depend on the moment duration and therefore on
//! whether the moment contains a (slower) two-qudit gate.

use crate::error::{NoiseError, NoiseResult};
use crate::kraus::Channel;
use qudit_core::{CMatrix, Complex};

/// Builds the qubit amplitude-damping channel with decay probability
/// `lambda1` (Equation 7).
///
/// # Errors
///
/// Returns [`NoiseError::InvalidProbability`] if `lambda1` is outside
/// `[0, 1]`.
pub fn qubit_damping(lambda1: f64) -> NoiseResult<Channel> {
    check_lambda("lambda1", lambda1)?;
    let k0 = CMatrix::from_rows(&[
        &[Complex::ONE, Complex::ZERO],
        &[Complex::ZERO, Complex::real((1.0 - lambda1).sqrt())],
    ]);
    let k1 = CMatrix::from_rows(&[
        &[Complex::ZERO, Complex::real(lambda1.sqrt())],
        &[Complex::ZERO, Complex::ZERO],
    ]);
    Ok(Channel::Kraus {
        operators: vec![k0, k1],
    })
}

/// Builds the qutrit amplitude-damping channel with decay probabilities
/// `lambda1` (|1⟩ → |0⟩) and `lambda2` (|2⟩ → |0⟩), following Equation 8.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidProbability`] if either probability is
/// outside `[0, 1]`.
pub fn qutrit_damping(lambda1: f64, lambda2: f64) -> NoiseResult<Channel> {
    check_lambda("lambda1", lambda1)?;
    check_lambda("lambda2", lambda2)?;
    let z = Complex::ZERO;
    let k0 = CMatrix::from_rows(&[
        &[Complex::ONE, z, z],
        &[z, Complex::real((1.0 - lambda1).sqrt()), z],
        &[z, z, Complex::real((1.0 - lambda2).sqrt())],
    ]);
    let k1 = CMatrix::from_rows(&[
        &[z, Complex::real(lambda1.sqrt()), z],
        &[z, z, z],
        &[z, z, z],
    ]);
    let k2 = CMatrix::from_rows(&[
        &[z, z, Complex::real(lambda2.sqrt())],
        &[z, z, z],
        &[z, z, z],
    ]);
    Ok(Channel::Kraus {
        operators: vec![k0, k1, k2],
    })
}

/// Builds the amplitude-damping channel for a qudit of dimension `d`
/// (2 or 3), given the idle duration `dt` and the relaxation time `t1`
/// (same units).
///
/// Damping probabilities follow the paper's Equation 9:
/// `λ_m = 1 − e^{−m·Δt/T1}`.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidModel`] for unsupported dimensions or
/// non-positive `t1`.
pub fn idle_damping_channel(d: usize, dt: f64, t1: f64) -> NoiseResult<Channel> {
    if t1 <= 0.0 {
        return Err(NoiseError::InvalidModel {
            reason: format!("T1 must be positive, got {t1}"),
        });
    }
    if dt < 0.0 {
        return Err(NoiseError::InvalidModel {
            reason: format!("idle duration must be non-negative, got {dt}"),
        });
    }
    match d {
        2 => qubit_damping(lambda_m(1, dt, t1)),
        3 => qutrit_damping(lambda_m(1, dt, t1), lambda_m(2, dt, t1)),
        _ => Err(NoiseError::InvalidModel {
            reason: format!("amplitude damping is implemented for d = 2 and 3, got d = {d}"),
        }),
    }
}

/// The damping probability `λ_m = 1 − e^{−m·Δt/T1}` of Equation 9.
pub fn lambda_m(m: u32, dt: f64, t1: f64) -> f64 {
    1.0 - (-(m as f64) * dt / t1).exp()
}

fn check_lambda(name: &str, value: f64) -> NoiseResult<()> {
    if !(0.0..=1.0).contains(&value) {
        return Err(NoiseError::InvalidProbability {
            parameter: name.to_string(),
            value,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn damping_channels_are_trace_preserving() {
        qubit_damping(0.2).unwrap().validate().unwrap();
        qutrit_damping(0.1, 0.3).unwrap().validate().unwrap();
        idle_damping_channel(3, 3e-7, 1e-3)
            .unwrap()
            .validate()
            .unwrap();
    }

    #[test]
    fn lambda_formula_matches_equation_nine() {
        let dt = 1e-7;
        let t1 = 1e-3;
        assert!((lambda_m(1, dt, t1) - (1.0 - (-dt / t1).exp())).abs() < 1e-15);
        assert!(lambda_m(2, dt, t1) > lambda_m(1, dt, t1));
        assert!(lambda_m(1, 0.0, t1).abs() < 1e-15);
    }

    #[test]
    fn ground_state_never_decays() {
        let channel = qutrit_damping(0.5, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = StateVector::from_basis_state(3, &[0]).unwrap();
        for _ in 0..20 {
            let branch = channel.apply_trajectory(&mut state, &[0], &mut rng);
            assert_eq!(branch, 0);
        }
        assert!((state.probability(&[0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn excited_two_state_decays_to_zero_with_lambda2() {
        let lambda2: f64 = 0.4;
        let channel = qutrit_damping(0.0, lambda2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 4000;
        let mut decays = 0;
        for _ in 0..trials {
            let mut state = StateVector::from_basis_state(3, &[2]).unwrap();
            let branch = channel.apply_trajectory(&mut state, &[0], &mut rng);
            if branch == 2 {
                decays += 1;
                assert!((state.probability(&[0]).unwrap() - 1.0).abs() < 1e-12);
            }
        }
        let rate = decays as f64 / trials as f64;
        assert!((rate - lambda2).abs() < 0.03, "decay rate {rate}");
    }

    #[test]
    fn rejects_unphysical_parameters() {
        assert!(qubit_damping(-0.1).is_err());
        assert!(qubit_damping(1.5).is_err());
        assert!(qutrit_damping(0.1, 2.0).is_err());
        assert!(idle_damping_channel(3, 1.0, 0.0).is_err());
        assert!(idle_damping_channel(5, 1.0, 1.0).is_err());
        assert!(idle_damping_channel(3, -1.0, 1.0).is_err());
    }

    #[test]
    fn longer_idle_means_more_damping() {
        let t1 = 1e-3;
        let short = lambda_m(1, 1e-7, t1);
        let long = lambda_m(1, 3e-7, t1);
        assert!(long > short);
    }
}
