//! The He et al. logarithmic-depth construction (Table 1): an N-controlled X
//! that achieves log depth on qubits by spending a clean ancilla for every
//! pair of controls.
//!
//! A binary tree of Toffolis ANDs the controls pairwise into ancillas, the
//! root ancilla drives the target, and the tree is uncomputed. The circuit
//! width is roughly 2N, which is why the paper describes it as "effectively
//! halving the effective potential of any given quantum hardware".

use qudit_circuit::{Circuit, CircuitResult, Control, Gate, Operation};

/// Builds the He-style log-depth N-controlled X.
///
/// Layout: controls occupy qudits `0..n_controls`, the target is
/// `n_controls`, and `n_controls − 1` clean ancillas follow (total width
/// `2·n_controls`). Ancillas must be |0⟩ on input and are returned to |0⟩.
///
/// # Errors
///
/// Returns an error if circuit construction fails internally.
pub fn he_log_depth(n_controls: usize, dim: usize) -> CircuitResult<Circuit> {
    let target = n_controls;
    let num_ancilla = n_controls.saturating_sub(1);
    let width = n_controls + 1 + num_ancilla;
    let mut circuit = Circuit::new(dim, width);

    if n_controls == 0 {
        circuit.push_gate(Gate::x(dim), &[target])?;
        return Ok(circuit);
    }
    if n_controls == 1 {
        circuit.push_controlled(Gate::x(dim), &[Control::on_one(0)], &[target])?;
        return Ok(circuit);
    }

    // Compute phase: combine wires pairwise into fresh ancillas until one
    // wire carries the AND of all controls.
    let mut compute_ops: Vec<Operation> = Vec::new();
    let mut frontier: Vec<usize> = (0..n_controls).collect();
    let mut next_ancilla = n_controls + 1;
    while frontier.len() > 1 {
        let mut next_frontier = Vec::new();
        let mut i = 0;
        while i + 1 < frontier.len() {
            let a = frontier[i];
            let b = frontier[i + 1];
            let anc = next_ancilla;
            next_ancilla += 1;
            compute_ops.push(Operation::new(
                Gate::x(dim),
                vec![Control::on_one(a), Control::on_one(b)],
                vec![anc],
            )?);
            next_frontier.push(anc);
            i += 2;
        }
        if i < frontier.len() {
            next_frontier.push(frontier[i]);
        }
        frontier = next_frontier;
    }

    for op in &compute_ops {
        circuit.push(op.clone())?;
    }
    circuit.push_controlled(Gate::x(dim), &[Control::on_one(frontier[0])], &[target])?;
    for op in compute_ops.iter().rev() {
        circuit.push(op.inverse())?;
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::{all_binary_basis_states, simulate_classical};
    use qudit_circuit::Schedule;

    fn run_with_clean_ancillas(circuit: &Circuit, controls_and_target: &[usize]) -> Vec<usize> {
        let mut input = controls_and_target.to_vec();
        input.resize(circuit.width(), 0);
        simulate_classical(circuit, &input).unwrap()
    }

    #[test]
    fn exhaustive_verification_small_sizes() {
        for n in 1..=6usize {
            let c = he_log_depth(n, 2).unwrap();
            for input in all_binary_basis_states(n + 1) {
                let out = run_with_clean_ancillas(&c, &input);
                let mut expected = input.clone();
                if input[..n].iter().all(|&b| b == 1) {
                    expected[n] = 1 - expected[n];
                }
                assert_eq!(&out[..n + 1], &expected[..], "n={n}, input={input:?}");
                assert!(
                    out[n + 1..].iter().all(|&a| a == 0),
                    "ancillas must be returned to |0⟩"
                );
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let depths: Vec<usize> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| Schedule::asap(&he_log_depth(n, 2).unwrap()).depth())
            .collect();
        for w in depths.windows(2) {
            assert!(
                w[1] - w[0] <= 3,
                "doubling controls should add O(1) depth: {depths:?}"
            );
        }
    }

    #[test]
    fn width_is_roughly_double_the_controls() {
        let c = he_log_depth(10, 2).unwrap();
        assert_eq!(c.width(), 20);
    }

    #[test]
    fn gate_count_is_linear() {
        let c16 = he_log_depth(16, 2).unwrap().len();
        let c32 = he_log_depth(32, 2).unwrap().len();
        let ratio = c32 as f64 / c16 as f64;
        assert!(ratio > 1.8 && ratio < 2.2);
    }
}
