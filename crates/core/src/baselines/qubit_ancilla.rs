//! The QUBIT+ANCILLA baseline: an N-controlled X using qubits only, plus a
//! single *dirty* borrowed ancilla (Section 3.2).
//!
//! This is the construction the paper benchmarks as QUBIT+ANCILLA: the
//! borrowed qubit halves the problem (Barenco Lemma 7.3) and each half is
//! solved with the borrowed-ancilla ladder (Lemma 7.2), giving linear gate
//! count and linear depth with a much smaller constant than the ancilla-free
//! construction, at the cost of leaving the ancilla-free frontier.

use crate::baselines::dirty::mcx_one_dirty;
use qudit_circuit::{Circuit, CircuitResult};

/// Builds the QUBIT+ANCILLA Generalized Toffoli over `n_controls + 2` qudits
/// of dimension `dim`: controls `0..n_controls`, target `n_controls`, and a
/// single dirty borrowed ancilla `n_controls + 1`.
///
/// # Errors
///
/// Returns an error if circuit construction fails internally.
pub fn qubit_one_dirty_ancilla(n_controls: usize, dim: usize) -> CircuitResult<Circuit> {
    let target = n_controls;
    let borrowed = n_controls + 1;
    let mut circuit = Circuit::new(dim, n_controls + 2);
    let controls: Vec<usize> = (0..n_controls).collect();
    mcx_one_dirty(&mut circuit, &controls, borrowed, target)?;
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::{all_binary_basis_states, simulate_classical};
    use qudit_circuit::Schedule;

    #[test]
    fn exhaustive_verification_small_sizes() {
        for n in 1..=7usize {
            let c = qubit_one_dirty_ancilla(n, 2).unwrap();
            for input in all_binary_basis_states(n + 2) {
                let out = simulate_classical(&c, &input).unwrap();
                let mut expected = input.clone();
                if input[..n].iter().all(|&b| b == 1) {
                    expected[n] = 1 - expected[n];
                }
                assert_eq!(out, expected, "n={n}, input={input:?}");
            }
        }
    }

    #[test]
    fn ancilla_is_restored_regardless_of_initial_value() {
        let n = 6;
        let c = qubit_one_dirty_ancilla(n, 2).unwrap();
        for ancilla_value in 0..2usize {
            let mut input = vec![1usize; n + 2];
            input[n] = 0;
            input[n + 1] = ancilla_value;
            let out = simulate_classical(&c, &input).unwrap();
            assert_eq!(out[n + 1], ancilla_value, "ancilla must be restored");
            assert_eq!(out[n], 1, "target must flip when all controls are 1");
        }
    }

    #[test]
    fn linear_gate_count_and_depth() {
        let sizes = [8usize, 16, 32];
        let counts: Vec<usize> = sizes
            .iter()
            .map(|&n| qubit_one_dirty_ancilla(n, 2).unwrap().len())
            .collect();
        let depths: Vec<usize> = sizes
            .iter()
            .map(|&n| Schedule::asap(&qubit_one_dirty_ancilla(n, 2).unwrap()).depth())
            .collect();
        for w in counts.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(ratio > 1.5 && ratio < 2.8, "counts {counts:?}");
        }
        for w in depths.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(ratio > 1.4 && ratio < 2.8, "depths {depths:?}");
        }
    }

    #[test]
    fn works_on_qutrit_registers() {
        let c = qubit_one_dirty_ancilla(4, 3).unwrap();
        let out = simulate_classical(&c, &[1, 1, 1, 1, 0, 1]).unwrap();
        assert_eq!(out, vec![1, 1, 1, 1, 1, 1]);
    }
}
