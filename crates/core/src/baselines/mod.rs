//! Baseline Generalized Toffoli constructions the paper compares against
//! (Section 3.2, Table 1).
//!
//! * [`qubit`] — the ancilla-free qubit-only construction (the paper's QUBIT
//!   benchmark, the Gidney/Barenco family of constructions that bootstrap
//!   dirty ancillas from the circuit itself and require small-angle
//!   controlled roots of X).
//! * [`qubit_ancilla`] — the qubit construction augmented with a single
//!   *dirty* borrowed ancilla (the QUBIT+ANCILLA benchmark), built from the
//!   classic Barenco Lemma 7.2 / 7.3 ladders.
//! * [`he`] — the He et al. logarithmic-depth construction that spends a
//!   clean ancilla per pair of controls.
//! * [`dirty`] — the shared multi-controlled-X building blocks with dirty
//!   (borrowed) ancillas used by the above.

pub mod dirty;
pub mod he;
pub mod qubit;
pub mod qubit_ancilla;

pub use he::he_log_depth;
pub use qubit::qubit_no_ancilla;
pub use qubit_ancilla::qubit_one_dirty_ancilla;
