//! The QUBIT baseline: an ancilla-free, qubit-only N-controlled gate
//! (Section 3.2).
//!
//! At the ancilla-free frontier no spare qubit exists, so qubit-only
//! constructions must either bootstrap dirty workspace from the circuit
//! itself or use controlled roots of X with very small angles — the paper
//! notes both features of the Gidney construction it benchmarks. We implement
//! the Barenco-family recursion: peel one control at a time with
//! `C(cₙ, V) · C^{n−1}X · C(cₙ, V†) · C^{n−1}X · C^{n−1}V` where `V² = U`,
//! resolving each inner `C^{n−1}X` with the single-borrowed-qubit ladder
//! (the circuit's own target serves as the borrowed qubit). The result is an
//! exact, ancilla-free construction whose two-qubit-gate count grows
//! quadratically; the paper's Gidney variant achieves linear scaling with a
//! very large constant (≈397N two-qubit gates). DESIGN.md documents this
//! substitution — at the 13-control size used for the fidelity evaluation the
//! two are comparable, and the asymptotic cost-model constants of the paper
//! are available separately in [`crate::cost`].

use crate::baselines::dirty::mcx_one_dirty;
use qudit_circuit::{Circuit, CircuitResult, Control, Gate};

/// Builds the ancilla-free QUBIT Generalized Toffoli over `n_controls + 1`
/// qudits of dimension `dim`: controls `0..n_controls`, target `n_controls`.
///
/// The construction uses controlled fractional powers of X (small-angle
/// rotations), so it is *not* a classical permutation circuit internally,
/// although its overall action is the classical N-controlled NOT.
///
/// # Errors
///
/// Returns an error if circuit construction fails internally.
pub fn qubit_no_ancilla(n_controls: usize, dim: usize) -> CircuitResult<Circuit> {
    let mut circuit = Circuit::new(dim, n_controls + 1);
    let controls: Vec<usize> = (0..n_controls).collect();
    multi_controlled_x_power(&mut circuit, &controls, n_controls, 1.0)?;
    Ok(circuit)
}

/// Appends a multi-controlled `X^exponent` with the given controls and
/// target, using no ancilla beyond the qubits already involved.
fn multi_controlled_x_power(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    exponent: f64,
) -> CircuitResult<()> {
    let dim = circuit.dim();
    match controls.len() {
        0 => circuit.push_gate(Gate::x_pow(dim, exponent), &[target]),
        1 => circuit.push_controlled(
            Gate::x_pow(dim, exponent),
            &[Control::on_one(controls[0])],
            &[target],
        ),
        2 => {
            // The standard five-gate decomposition of a doubly-controlled U
            // with V = U^{1/2}.
            let half = exponent / 2.0;
            let (c0, c1) = (controls[0], controls[1]);
            circuit.push_controlled(Gate::x_pow(dim, half), &[Control::on_one(c1)], &[target])?;
            circuit.push_controlled(Gate::x(dim), &[Control::on_one(c0)], &[c1])?;
            circuit.push_controlled(Gate::x_pow(dim, -half), &[Control::on_one(c1)], &[target])?;
            circuit.push_controlled(Gate::x(dim), &[Control::on_one(c0)], &[c1])?;
            circuit.push_controlled(Gate::x_pow(dim, half), &[Control::on_one(c0)], &[target])
        }
        _ => {
            // Lemma 7.5 recursion: the last control gates V = X^{exponent/2}
            // on the target, the remaining controls toggle the last control
            // (an (n−1)-controlled X, computed with the target itself as the
            // borrowed dirty qubit), and the remaining controls recursively
            // apply V to the target.
            let half = exponent / 2.0;
            let (rest, last) = controls.split_at(controls.len() - 1);
            let last = last[0];
            circuit.push_controlled(Gate::x_pow(dim, half), &[Control::on_one(last)], &[target])?;
            mcx_one_dirty(circuit, rest, target, last)?;
            circuit.push_controlled(
                Gate::x_pow(dim, -half),
                &[Control::on_one(last)],
                &[target],
            )?;
            mcx_one_dirty(circuit, rest, target, last)?;
            multi_controlled_x_power(circuit, rest, target, half)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::all_binary_basis_states;
    use qudit_core::Complex;
    use qudit_sim::Simulator;

    /// Verifies via state-vector simulation that the circuit implements an
    /// N-controlled X (up to negligible numerical error, with no stray
    /// relative phases).
    fn assert_is_mcx_statevector(circuit: &Circuit, n_controls: usize) {
        let sim = Simulator::new();
        for input in all_binary_basis_states(circuit.width()) {
            let out = sim.run_on_basis_state(circuit, &input).unwrap();
            let mut expected = input.clone();
            if input[..n_controls].iter().all(|&b| b == 1) {
                expected[n_controls] = 1 - expected[n_controls];
            }
            let amp = out.amplitude(&expected).unwrap();
            assert!(
                amp.approx_eq(Complex::ONE, 1e-7),
                "input {input:?}: amplitude at expected output is {amp}"
            );
        }
    }

    #[test]
    fn single_and_double_control_cases() {
        for n in 1..=2usize {
            let c = qubit_no_ancilla(n, 2).unwrap();
            assert_is_mcx_statevector(&c, n);
        }
    }

    #[test]
    fn three_to_five_controls_verified_by_statevector() {
        for n in 3..=5usize {
            let c = qubit_no_ancilla(n, 2).unwrap();
            assert_is_mcx_statevector(&c, n);
        }
    }

    #[test]
    fn six_controls_spot_checked() {
        let n = 6;
        let c = qubit_no_ancilla(n, 2).unwrap();
        let sim = Simulator::new();
        // All-ones flips the target.
        let mut input = vec![1usize; n + 1];
        input[n] = 0;
        let out = sim.run_on_basis_state(&c, &input).unwrap();
        let mut expected = input.clone();
        expected[n] = 1;
        assert!(out
            .amplitude(&expected)
            .unwrap()
            .approx_eq(Complex::ONE, 1e-7));
        // A single zero control leaves the register unchanged.
        let mut input2 = input.clone();
        input2[2] = 0;
        let out2 = sim.run_on_basis_state(&c, &input2).unwrap();
        assert!(out2
            .amplitude(&input2)
            .unwrap()
            .approx_eq(Complex::ONE, 1e-7));
    }

    #[test]
    fn uses_no_ancilla() {
        let c = qubit_no_ancilla(5, 2).unwrap();
        assert_eq!(c.width(), 6, "only controls + target");
    }

    #[test]
    fn contains_small_angle_rotations() {
        // The deeper the recursion, the smaller the controlled rotation
        // angles — the experimental-challenge feature the paper points out.
        let c = qubit_no_ancilla(6, 2).unwrap();
        let has_small_angle = c.iter().any(|op| op.gate().name().starts_with("X^0.03"));
        assert!(
            has_small_angle,
            "expected X^(1/32) gates in the decomposition"
        );
    }

    #[test]
    fn gate_count_grows_superlinearly_but_polynomially() {
        let counts: Vec<usize> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| qubit_no_ancilla(n, 2).unwrap().len())
            .collect();
        // Quadratic-ish growth: superlinear but bounded by c·n², and the
        // doubling ratio converges towards 4 from above.
        let ratios: Vec<f64> = counts
            .windows(2)
            .map(|w| w[1] as f64 / w[0] as f64)
            .collect();
        for w in ratios.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "ratios should not increase: {counts:?}"
            );
        }
        assert!(ratios[ratios.len() - 1] < 5.5, "ratios {ratios:?}");
        assert!(counts[3] > 2 * 64, "superlinear: {counts:?}");
        assert!(counts[3] < 20 * 64 * 64, "polynomially bounded: {counts:?}");
    }
}
