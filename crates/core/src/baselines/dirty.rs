//! Multi-controlled X with *dirty* (borrowed) ancillas.
//!
//! These are the classic qubit-only building blocks from Barenco et al.:
//!
//! * [`mcx_ladder`] (Lemma 7.2): an N-controlled X using N−2 borrowed qubits
//!   of unknown state, restored afterwards, with 4(N−2) Toffolis.
//! * [`mcx_one_dirty`] (Lemma 7.3): an N-controlled X using a single borrowed
//!   qubit, by splitting the controls in half and applying two ladder
//!   constructions twice each.
//!
//! Both work for any dimension `d ≥ 2` (only levels |0⟩/|1⟩ are used), so the
//! same code serves the qubit baselines and any qudit register.

use qudit_circuit::{Circuit, CircuitError, CircuitResult, Control, Gate};

/// Appends a Toffoli (CCX on levels 0/1) to the circuit.
fn push_toffoli(c: &mut Circuit, a: usize, b: usize, t: usize) -> CircuitResult<()> {
    c.push_controlled(
        Gate::x(c.dim()),
        &[Control::on_one(a), Control::on_one(b)],
        &[t],
    )
}

/// Appends a CNOT (CX on levels 0/1) to the circuit.
fn push_cnot(c: &mut Circuit, a: usize, t: usize) -> CircuitResult<()> {
    c.push_controlled(Gate::x(c.dim()), &[Control::on_one(a)], &[t])
}

/// Appends an N-controlled X to `circuit` using the borrowed-ancilla ladder
/// (Barenco Lemma 7.2).
///
/// `ancillas` may be in any state and are restored; at least
/// `controls.len() − 2` of them are required (only that many are used).
///
/// # Errors
///
/// Returns an error if there are not enough ancillas or any index is
/// invalid.
pub fn mcx_ladder(
    circuit: &mut Circuit,
    controls: &[usize],
    ancillas: &[usize],
    target: usize,
) -> CircuitResult<()> {
    let k = controls.len();
    match k {
        0 => return circuit.push_gate(Gate::x(circuit.dim()), &[target]),
        1 => return push_cnot(circuit, controls[0], target),
        2 => return push_toffoli(circuit, controls[0], controls[1], target),
        _ => {}
    }
    if ancillas.len() < k - 2 {
        return Err(CircuitError::InvalidClassicalInput {
            reason: format!(
                "ladder construction needs {} borrowed qubits but only {} were provided",
                k - 2,
                ancillas.len()
            ),
        });
    }
    let a = &ancillas[..k - 2];

    // Gate sequences (see module docs): the outer V touches the target, the
    // inner V restores the borrowed qubits.
    //   top     = Toffoli(c_{k-1}, a_{k-3}, t)
    //   down    = Toffoli(c_{k-2}, a_{k-4}, a_{k-3}), …, Toffoli(c_2, a_0, a_1)
    //   bottom  = Toffoli(c_0, c_1, a_0)
    //   full    = top, down, bottom, up, top, down, bottom, up
    let emit_v = |circuit: &mut Circuit, include_top: bool| -> CircuitResult<()> {
        if include_top {
            push_toffoli(circuit, controls[k - 1], a[k - 3], target)?;
        }
        for j in (2..k - 1).rev() {
            push_toffoli(circuit, controls[j], a[j - 2], a[j - 1])?;
        }
        push_toffoli(circuit, controls[0], controls[1], a[0])?;
        for j in 2..k - 1 {
            push_toffoli(circuit, controls[j], a[j - 2], a[j - 1])?;
        }
        if include_top {
            push_toffoli(circuit, controls[k - 1], a[k - 3], target)?;
        }
        Ok(())
    };

    emit_v(circuit, true)?;
    emit_v(circuit, false)?;
    Ok(())
}

/// Appends an N-controlled X to `circuit` using a single borrowed qubit
/// (Barenco Lemma 7.3): the controls are split into two halves and each half
/// is handled by [`mcx_ladder`] with the other half (plus the target) serving
/// as borrowed workspace; applying the two halves twice cancels the effect of
/// the unknown borrowed-qubit state.
///
/// # Errors
///
/// Returns an error if indices are invalid.
pub fn mcx_one_dirty(
    circuit: &mut Circuit,
    controls: &[usize],
    borrowed: usize,
    target: usize,
) -> CircuitResult<()> {
    let k = controls.len();
    match k {
        0 => return circuit.push_gate(Gate::x(circuit.dim()), &[target]),
        1 => return push_cnot(circuit, controls[0], target),
        2 => return push_toffoli(circuit, controls[0], controls[1], target),
        _ => {}
    }
    let m = k.div_ceil(2);
    let (a, b) = controls.split_at(m);

    // Dirty workspace for each half: the other half (plus the target when
    // targeting the borrowed qubit).
    let mut dirty_for_a: Vec<usize> = b.to_vec();
    dirty_for_a.push(target);
    let dirty_for_b: Vec<usize> = a.to_vec();
    let mut b_plus: Vec<usize> = b.to_vec();
    b_plus.push(borrowed);

    for _ in 0..2 {
        mcx_ladder(circuit, a, &dirty_for_a, borrowed)?;
        mcx_ladder(circuit, &b_plus, &dirty_for_b, target)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::{all_binary_basis_states, simulate_classical};

    /// Checks that `circuit` implements an N-controlled X from `controls` to
    /// `target`, restoring every other qubit, for every binary input.
    fn assert_is_mcx(circuit: &Circuit, controls: &[usize], target: usize) {
        for input in all_binary_basis_states(circuit.width()) {
            let out = simulate_classical(circuit, &input).unwrap();
            let mut expected = input.clone();
            if controls.iter().all(|&c| input[c] == 1) {
                expected[target] = 1 - expected[target];
            }
            assert_eq!(out, expected, "input {input:?}");
        }
    }

    #[test]
    fn ladder_with_full_borrowed_register() {
        // 5 controls (0..5), 3 borrowed (5..8), target 8.
        let mut c = Circuit::new(2, 9);
        mcx_ladder(&mut c, &[0, 1, 2, 3, 4], &[5, 6, 7], 8).unwrap();
        assert_is_mcx(&c, &[0, 1, 2, 3, 4], 8);
        assert_eq!(c.len(), 4 * (5 - 2), "4(k-2) Toffolis");
    }

    #[test]
    fn ladder_small_cases() {
        let mut c = Circuit::new(2, 3);
        mcx_ladder(&mut c, &[0, 1], &[], 2).unwrap();
        assert_is_mcx(&c, &[0, 1], 2);

        let mut c = Circuit::new(2, 2);
        mcx_ladder(&mut c, &[0], &[], 1).unwrap();
        assert_is_mcx(&c, &[0], 1);
    }

    #[test]
    fn ladder_three_controls_one_borrowed() {
        let mut c = Circuit::new(2, 5);
        mcx_ladder(&mut c, &[0, 1, 2], &[3], 4).unwrap();
        assert_is_mcx(&c, &[0, 1, 2], 4);
    }

    #[test]
    fn ladder_rejects_too_few_ancillas() {
        let mut c = Circuit::new(2, 6);
        assert!(mcx_ladder(&mut c, &[0, 1, 2, 3], &[4], 5).is_err());
    }

    #[test]
    fn one_dirty_ancilla_various_sizes() {
        for k in 3..=7usize {
            // controls 0..k, borrowed k, target k+1.
            let mut c = Circuit::new(2, k + 2);
            let controls: Vec<usize> = (0..k).collect();
            mcx_one_dirty(&mut c, &controls, k, k + 1).unwrap();
            assert_is_mcx(&c, &controls, k + 1);
        }
    }

    #[test]
    fn one_dirty_works_on_qutrit_registers_too() {
        // Same construction embedded in a d=3 register (only levels 0/1 used).
        let mut c = Circuit::new(3, 6);
        mcx_one_dirty(&mut c, &[0, 1, 2, 3], 4, 5).unwrap();
        for input in all_binary_basis_states(6) {
            let out = simulate_classical(&c, &input).unwrap();
            let mut expected = input.clone();
            if input[..4].iter().all(|&b| b == 1) {
                expected[5] = 1 - expected[5];
            }
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn gate_count_scales_linearly() {
        let mut counts = Vec::new();
        for k in [8usize, 16, 32, 64] {
            let mut c = Circuit::new(2, k + 2);
            let controls: Vec<usize> = (0..k).collect();
            mcx_one_dirty(&mut c, &controls, k, k + 1).unwrap();
            counts.push(c.len());
        }
        // Doubling k should roughly double the Toffoli count (linear scaling
        // up to an additive constant): asymptotically ≈ 8k Toffolis.
        assert!(counts[2] < 3 * counts[1], "counts {counts:?}");
        assert!(counts[3] < 3 * counts[2], "counts {counts:?}");
        assert!(counts[3] <= 8 * 64, "counts {counts:?}");
    }
}
