//! The paper's key contribution (Section 4.2, Figure 5): an ancilla-free,
//! logarithmic-depth decomposition of the Generalized Toffoli gate using
//! qutrits.
//!
//! The construction is a binary tree over the controls. Each internal node
//! of the tree is itself one of the control qudits: a three-qutrit gate
//! elevates it to |2⟩ (via `X+1`) iff it was originally |1⟩ and the roots of
//! both child subtrees are |2⟩ (leaf children are checked against their own
//! activation level, normally |1⟩). After `⌈log₂ N⌉` levels the tree root is
//! |2⟩ iff every control is active, a single |2⟩-controlled gate applies the
//! target unitary, and the mirror-image uncomputation restores the controls.
//!
//! Control activations other than |1⟩ are supported (the paper notes the
//! construction "still works in a straightforward fashion when the control
//! type … activates on |2⟩ or |0⟩"), which the incrementer requires:
//! |0⟩-activated controls can serve as internal nodes by using `X02` instead
//! of `X+1`, while |2⟩-activated controls are kept as leaves.

use qudit_circuit::{Circuit, CircuitError, CircuitResult, Control, Gate, Operation};

/// Specification of a multiply-controlled gate: a set of controls (each with
/// its own activation level), one target, and the gate applied to the target
/// when every control is active.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneralizedToffoliSpec {
    /// The control conditions.
    pub controls: Vec<Control>,
    /// The target qudit.
    pub target: usize,
    /// The gate applied to the target when all controls are active.
    pub target_gate: Gate,
}

impl GeneralizedToffoliSpec {
    /// A standard N-controlled X: controls `0..n_controls` activating on |1⟩,
    /// target `n_controls`, gate `X`.
    pub fn n_controlled_x(n_controls: usize) -> Self {
        GeneralizedToffoliSpec {
            controls: (0..n_controls).map(Control::on_one).collect(),
            target: n_controls,
            target_gate: Gate::x(3),
        }
    }

    /// A standard N-controlled Z (used by Grover's diffusion operator).
    pub fn n_controlled_z(n_controls: usize) -> Self {
        GeneralizedToffoliSpec {
            controls: (0..n_controls).map(Control::on_one).collect(),
            target: n_controls,
            target_gate: Gate::z(3),
        }
    }

    /// The circuit width needed (1 + largest qudit index used).
    pub fn min_width(&self) -> usize {
        self.controls
            .iter()
            .map(|c| c.qudit)
            .chain(std::iter::once(self.target))
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }
}

/// Emits the compute half of the control tree into `ops`, returning the
/// summary controls (normally a single |2⟩-activated root) that jointly
/// certify "all controls in this subtree are active".
fn build_tree(controls: &[Control], ops: &mut Vec<Operation>) -> CircuitResult<Vec<Control>> {
    match controls.len() {
        0 => Ok(Vec::new()),
        1 => Ok(vec![controls[0]]),
        _ => {
            // Choose the internal node: the control nearest the middle whose
            // activation is not |2⟩ (a |2⟩-activated control cannot act as a
            // tree root because X+1 would take it out of its marked state).
            let mid = controls.len() / 2;
            let root_idx = (0..controls.len())
                .filter(|&i| controls[i].level != 2)
                .min_by_key(|&i| (i as isize - mid as isize).unsigned_abs());
            let Some(root_idx) = root_idx else {
                // Degenerate case: every control in this subtree activates on
                // |2⟩; no compression is possible, so pass them all upward.
                return Ok(controls.to_vec());
            };
            let root = controls[root_idx];
            let left = build_tree(&controls[..root_idx], ops)?;
            let right = build_tree(&controls[root_idx + 1..], ops)?;
            let mut gate_controls = left;
            gate_controls.extend(right);
            // The elevation gate: X+1 marks a |1⟩-activated root (1 → 2);
            // X02 marks a |0⟩-activated root (0 → 2).
            let gate = match root.level {
                1 => Gate::increment(3),
                0 => Gate::swap_levels(3, 0, 2),
                _ => unreachable!("|2⟩-activated roots are filtered out above"),
            };
            if gate_controls.is_empty() {
                // A lone root with no children cannot occur for len >= 2.
                return Err(CircuitError::InvalidClassicalInput {
                    reason: "internal tree node with no children".to_string(),
                });
            }
            ops.push(Operation::new(gate, gate_controls, vec![root.qudit])?);
            Ok(vec![Control::on_two(root.qudit)])
        }
    }
}

/// Builds the qutrit-tree Generalized Toffoli circuit for the given
/// specification, over a register of `width` qutrits.
///
/// The returned circuit takes qubit (binary) inputs on all controls that
/// activate on |0⟩ or |1⟩, occupies the |2⟩ state only transiently, and
/// restores every control to its input value.
///
/// # Errors
///
/// Returns an error if any qudit index is out of range, indices repeat, or a
/// control level is invalid.
pub fn generalized_toffoli(spec: &GeneralizedToffoliSpec, width: usize) -> CircuitResult<Circuit> {
    let mut circuit = Circuit::new(3, width);
    if spec.controls.is_empty() {
        circuit.push_gate(spec.target_gate.clone(), &[spec.target])?;
        return Ok(circuit);
    }

    let mut compute_ops: Vec<Operation> = Vec::new();
    let summary = build_tree(&spec.controls, &mut compute_ops)?;

    for op in &compute_ops {
        circuit.push(op.clone())?;
    }
    circuit.push_controlled(spec.target_gate.clone(), &summary, &[spec.target])?;
    for op in compute_ops.iter().rev() {
        circuit.push(op.inverse())?;
    }
    Ok(circuit)
}

/// Builds the standard N-controlled-X qutrit-tree circuit on `n_controls + 1`
/// qutrits (controls `0..n_controls`, target `n_controls`).
///
/// # Errors
///
/// Returns an error only if circuit construction fails internally.
pub fn n_controlled_x(n_controls: usize) -> CircuitResult<Circuit> {
    let spec = GeneralizedToffoliSpec::n_controlled_x(n_controls);
    generalized_toffoli(&spec, n_controls + 1)
}

/// Builds the N-controlled-U qutrit-tree circuit with an arbitrary
/// single-qutrit target gate.
///
/// # Errors
///
/// Returns an error if construction fails.
pub fn n_controlled_u(n_controls: usize, target_gate: Gate) -> CircuitResult<Circuit> {
    let spec = GeneralizedToffoliSpec {
        controls: (0..n_controls).map(Control::on_one).collect(),
        target: n_controls,
        target_gate,
    };
    generalized_toffoli(&spec, n_controls + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::{all_binary_basis_states, simulate_classical};
    use qudit_circuit::{analyze, CostWeights, Schedule};

    fn expected_n_controlled_x(input: &[usize]) -> Vec<usize> {
        let n = input.len() - 1;
        let mut out = input.to_vec();
        if input[..n].iter().all(|&b| b == 1) {
            out[n] = 1 - out[n];
        }
        out
    }

    #[test]
    fn two_controls_reduces_to_figure_4() {
        let c = n_controlled_x(2).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qudit_gate_count(), 3);
    }

    #[test]
    fn exhaustive_verification_up_to_nine_controls() {
        for n in 1..=9usize {
            let c = n_controlled_x(n).unwrap();
            for input in all_binary_basis_states(n + 1) {
                let out = simulate_classical(&c, &input).unwrap();
                assert_eq!(
                    out,
                    expected_n_controlled_x(&input),
                    "mismatch for n={n}, input={input:?}"
                );
            }
        }
    }

    #[test]
    fn outputs_are_always_binary() {
        let c = n_controlled_x(7).unwrap();
        for input in all_binary_basis_states(8) {
            let out = simulate_classical(&c, &input).unwrap();
            assert!(out.iter().all(|&d| d < 2), "leaked |2⟩ for input {input:?}");
        }
    }

    #[test]
    fn fifteen_controls_matches_figure_5_structure() {
        // 15 controls: 7 compute gates + 1 target gate + 7 uncompute gates.
        let c = n_controlled_x(15).unwrap();
        assert_eq!(c.len(), 15);
        // Logical depth is 2·log2(16) + 1 = 9? The tree has 3 levels of
        // three-qutrit gates on each side plus the central gate: depth 7.
        let depth = Schedule::asap(&c).depth();
        assert_eq!(depth, 7, "tree depth for 15 controls");
    }

    #[test]
    fn depth_grows_logarithmically() {
        let mut depths = Vec::new();
        for n in [7usize, 15, 31, 63, 127] {
            let c = n_controlled_x(n).unwrap();
            depths.push(Schedule::asap(&c).depth());
        }
        // Doubling the controls adds a constant number of levels (2: one on
        // the compute side, one on the uncompute side).
        for w in depths.windows(2) {
            assert_eq!(w[1] - w[0], 2, "depths {depths:?}");
        }
    }

    #[test]
    fn gate_count_is_linear_and_about_6n_two_qutrit_gates() {
        for n in [16usize, 32, 64, 128] {
            let c = n_controlled_x(n).unwrap();
            let costs = analyze(&c, CostWeights::di_wei());
            let two_q = costs.two_qudit_gates as f64;
            // Compute+uncompute have ~n/2 three-qutrit gates each, so with
            // the 6× expansion we expect ≈ 6·n two-qudit gates.
            assert!(
                two_q > 5.0 * n as f64 && two_q < 7.0 * n as f64,
                "n={n}: two-qudit gates {two_q}"
            );
        }
    }

    #[test]
    fn controls_activating_on_zero_work() {
        // 3 controls: q0 activates on |0⟩, q1 and q2 on |1⟩.
        let spec = GeneralizedToffoliSpec {
            controls: vec![Control::on_zero(0), Control::on_one(1), Control::on_one(2)],
            target: 3,
            target_gate: Gate::x(3),
        };
        let c = generalized_toffoli(&spec, 4).unwrap();
        for input in all_binary_basis_states(4) {
            let out = simulate_classical(&c, &input).unwrap();
            let mut expected = input.to_vec();
            if input[0] == 0 && input[1] == 1 && input[2] == 1 {
                expected[3] = 1 - expected[3];
            }
            assert_eq!(out, expected, "input {input:?}");
        }
    }

    #[test]
    fn controls_activating_on_two_work_as_leaves() {
        // q0 activates on |2⟩ (as the incrementer needs). Feed it ternary
        // inputs directly.
        let spec = GeneralizedToffoliSpec {
            controls: vec![Control::on_two(0), Control::on_one(1), Control::on_one(2)],
            target: 3,
            target_gate: Gate::x(3),
        };
        let c = generalized_toffoli(&spec, 4).unwrap();
        for q0 in 0..3usize {
            for q1 in 0..2usize {
                for q2 in 0..2usize {
                    for t in 0..2usize {
                        let input = vec![q0, q1, q2, t];
                        let out = simulate_classical(&c, &input).unwrap();
                        let mut expected = input.clone();
                        if q0 == 2 && q1 == 1 && q2 == 1 {
                            expected[3] = 1 - expected[3];
                        }
                        assert_eq!(out, expected, "input {input:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn arbitrary_target_gate_is_applied() {
        let c = n_controlled_u(3, Gate::increment(3)).unwrap();
        let out = simulate_classical(&c, &[1, 1, 1, 1]).unwrap();
        assert_eq!(out, vec![1, 1, 1, 2], "X+1 applied to the target");
        let out = simulate_classical(&c, &[1, 0, 1, 1]).unwrap();
        assert_eq!(out, vec![1, 0, 1, 1]);
    }

    #[test]
    fn zero_controls_is_just_the_gate() {
        let spec = GeneralizedToffoliSpec {
            controls: vec![],
            target: 0,
            target_gate: Gate::x(3),
        };
        let c = generalized_toffoli(&spec, 1).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(simulate_classical(&c, &[0]).unwrap(), vec![1]);
    }

    #[test]
    fn statevector_agrees_with_classical_for_medium_width() {
        use qudit_sim::Simulator;
        let c = n_controlled_x(5).unwrap();
        let sim = Simulator::new();
        for input in all_binary_basis_states(6) {
            let expected = simulate_classical(&c, &input).unwrap();
            let out = sim.run_on_basis_state(&c, &input).unwrap();
            assert!(
                (out.probability(&expected).unwrap() - 1.0).abs() < 1e-9,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn min_width_accounts_for_all_qudits() {
        let spec = GeneralizedToffoliSpec::n_controlled_x(4);
        assert_eq!(spec.min_width(), 5);
    }
}
