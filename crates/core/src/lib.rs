//! # qutrit-toffoli
//!
//! The primary contribution of *"Asymptotic Improvements to Quantum Circuits
//! via Qutrits"* (Gokhale et al., ISCA 2019), reproduced in Rust: an
//! ancilla-free, logarithmic-depth decomposition of the Generalized Toffoli
//! gate that temporarily stores information in the qutrit |2⟩ state, together
//! with the baseline constructions it is compared against and the derived
//! circuits (incrementer, Grover search, artificial quantum neuron).
//!
//! ## Quick start
//!
//! ```
//! use qutrit_toffoli::{gen_toffoli, verify};
//! use qudit_circuit::Schedule;
//!
//! // A 7-controlled X with no ancilla, in logarithmic depth.
//! let circuit = gen_toffoli::n_controlled_x(7)?;
//! assert_eq!(circuit.width(), 8);
//! assert!(Schedule::asap(&circuit).depth() <= 7);
//! assert!(verify::verify_n_controlled_x_classical(&circuit, 7, 7)?.is_none());
//! # Ok::<(), qudit_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod cost;
pub mod gen_toffoli;
pub mod grover;
pub mod incrementer;
pub mod neuron;
pub mod toffoli;
pub mod verify;

pub use cost::Construction;
pub use gen_toffoli::{
    generalized_toffoli, n_controlled_u, n_controlled_x, GeneralizedToffoliSpec,
};
pub use incrementer::incrementer;
pub use toffoli::{toffoli, toffoli_via_qutrits};
