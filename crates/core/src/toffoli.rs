//! The Toffoli-via-qutrits decomposition of Figure 4.
//!
//! Inputs and outputs are qubits, but the first control temporarily elevates
//! the second control to |2⟩, which then triggers the target X. Three
//! two-qutrit gates replace the usual six-CNOT qubit decomposition, and no
//! ancilla is used.

use qudit_circuit::{Circuit, CircuitResult, Control, Gate};

/// Builds the Figure 4 Toffoli decomposition on qutrits `q0, q1, q2` of a
/// width-`width` qutrit circuit: `X` is applied to `q2` iff `q0` and `q1`
/// are both |1⟩.
///
/// # Errors
///
/// Returns an error if any index is out of range or indices repeat.
pub fn toffoli_via_qutrits(
    width: usize,
    q0: usize,
    q1: usize,
    q2: usize,
) -> CircuitResult<Circuit> {
    let mut c = Circuit::new(3, width);
    c.push_controlled(Gate::increment(3), &[Control::on_one(q0)], &[q1])?;
    c.push_controlled(Gate::x(3), &[Control::on_two(q1)], &[q2])?;
    c.push_controlled(Gate::decrement(3), &[Control::on_one(q0)], &[q1])?;
    Ok(c)
}

/// Builds the standard three-qutrit Toffoli on qutrits `0, 1, 2`.
///
/// # Panics
///
/// Never panics: the fixed indices are always valid.
pub fn toffoli() -> Circuit {
    toffoli_via_qutrits(3, 0, 1, 2).expect("indices 0,1,2 are valid for width 3")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::{simulate_classical, verify_classical_function};
    use qudit_circuit::Schedule;

    #[test]
    fn toffoli_matches_truth_table_on_all_binary_inputs() {
        let c = toffoli();
        let mismatch = verify_classical_function(&c, |input| {
            let mut out = input.to_vec();
            if input[0] == 1 && input[1] == 1 {
                out[2] = 1 - out[2];
            }
            out
        })
        .unwrap();
        assert!(mismatch.is_none(), "counterexample: {mismatch:?}");
    }

    #[test]
    fn toffoli_has_three_two_qutrit_gates_and_depth_three() {
        let c = toffoli();
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qudit_gate_count(), 3);
        assert_eq!(Schedule::asap(&c).depth(), 3);
    }

    #[test]
    fn toffoli_restores_controls() {
        let c = toffoli();
        for input in qudit_circuit::classical::all_binary_basis_states(3) {
            let out = simulate_classical(&c, &input).unwrap();
            assert_eq!(out[0], input[0], "first control must be restored");
            assert_eq!(out[1], input[1], "second control must be restored");
            assert!(out.iter().all(|&d| d < 2), "output must be binary");
        }
    }

    #[test]
    fn toffoli_on_remapped_qudits() {
        let c = toffoli_via_qutrits(5, 4, 2, 0).unwrap();
        let out = simulate_classical(&c, &[0, 0, 1, 0, 1]).unwrap();
        assert_eq!(out, vec![1, 0, 1, 0, 1]);
        let out = simulate_classical(&c, &[0, 0, 0, 0, 1]).unwrap();
        assert_eq!(out, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn rejects_out_of_range_indices() {
        assert!(toffoli_via_qutrits(3, 0, 1, 5).is_err());
    }
}
