//! The ancilla-free incrementer (Section 5.3, Figure 7).
//!
//! The circuit adds `1 mod 2^N` to an `N`-qubit register without any
//! ancilla, in `O(log² N)` depth. The design follows the paper's recursive
//! scheme: the least-significant qutrit is elevated with `X+1` so that |2⟩
//! encodes "this bit generates a carry"; a multiply-controlled gate (one |2⟩
//! control for carry generation plus a chain of |1⟩ controls for carry
//! propagation) elevates the midpoint of the register, after which the two
//! halves are completed **in parallel** on disjoint qudits; finally the
//! midpoint is restored to binary with a multiply-controlled `X02` whose
//! chain of |0⟩ controls recognises that the incremented lower half wrapped
//! around to all zeros (which happens exactly when a carry crossed it). Each
//! multiply-controlled gate is realised with the log-depth Generalized
//! Toffoli of [`crate::gen_toffoli`], giving the overall `log²` depth.
//!
//! The construction is verified exhaustively for all inputs up to 10 bits in
//! the tests below (and cross-checked against the state-vector simulator for
//! smaller widths).

use crate::gen_toffoli::{generalized_toffoli, GeneralizedToffoliSpec};
use qudit_circuit::{Circuit, CircuitResult, Control, Gate};

/// Builds the ancilla-free incrementer on `n_bits` qubits (qudit 0 is the
/// least-significant bit), as a width-`n_bits` qutrit circuit.
///
/// # Errors
///
/// Returns an error if `n_bits == 0` or circuit construction fails.
pub fn incrementer(n_bits: usize) -> CircuitResult<Circuit> {
    let mut circuit = Circuit::new(3, n_bits);
    if n_bits == 0 {
        return Err(qudit_circuit::CircuitError::InvalidClassicalInput {
            reason: "incrementer needs at least one bit".to_string(),
        });
    }
    if n_bits == 1 {
        circuit.push_gate(Gate::x(3), &[0])?;
        return Ok(circuit);
    }
    // Elevate the LSB: |0⟩→|1⟩ (no carry), |1⟩→|2⟩ (carry).
    circuit.push_gate(Gate::increment(3), &[0])?;
    let register: Vec<usize> = (0..n_bits).collect();
    carry_complete(&mut circuit, &register)?;
    // Restore the LSB to its incremented binary value: 1→1, 2→0.
    circuit.push_gate(Gate::swap_levels(3, 0, 2), &[0])?;
    Ok(circuit)
}

/// Completes the increment of `register[1..]` given that `register[0]` holds
/// the carry-encoded qutrit (|2⟩ ⟺ a carry must propagate past position 0).
/// `register[0]` is left in its encoded state for the caller to restore.
fn carry_complete(circuit: &mut Circuit, register: &[usize]) -> CircuitResult<()> {
    let m = register.len();
    if m <= 1 {
        return Ok(());
    }
    if m == 2 {
        // A single bit above the carry source: flip it iff the carry fires.
        circuit.push_controlled(Gate::x(3), &[Control::on_two(register[0])], &[register[1]])?;
        return Ok(());
    }
    let h = m / 2;

    // 1. Carry into the upper half: |2⟩ on the carry source and |1⟩ on every
    //    propagating bit below the midpoint elevate the midpoint with X+1
    //    (0→1 records "carry arrived", 1→2 records "carry arrived and this
    //    bit generates the next carry").
    let mut carry_controls = vec![Control::on_two(register[0])];
    carry_controls.extend(register[1..h].iter().map(|&q| Control::on_one(q)));
    let carry_gate = GeneralizedToffoliSpec {
        controls: carry_controls,
        target: register[h],
        target_gate: Gate::increment(3),
    };
    circuit.extend(&generalized_toffoli(&carry_gate, circuit.width())?)?;

    // 2. Complete both halves. They act on disjoint qudits, so the scheduler
    //    runs them in parallel — this is what keeps the depth at O(log² N).
    carry_complete(circuit, &register[..h])?;
    carry_complete(circuit, &register[h..])?;

    // 3. Restore the midpoint to binary. A carry crossed the lower half iff
    //    the (now incremented) lower half wrapped around to zero, i.e. the
    //    carry source reads |2⟩ and every bit below the midpoint reads |0⟩.
    //    In that case the midpoint maps 1→1 (its bit flipped to 1) and 2→0
    //    (its bit flipped to 0), which is exactly X02; without a carry the
    //    midpoint was never elevated and is left untouched.
    let mut restore_controls = vec![Control::on_two(register[0])];
    restore_controls.extend(register[1..h].iter().map(|&q| Control::on_zero(q)));
    let restore_gate = GeneralizedToffoliSpec {
        controls: restore_controls,
        target: register[h],
        target_gate: Gate::swap_levels(3, 0, 2),
    };
    circuit.extend(&generalized_toffoli(&restore_gate, circuit.width())?)?;
    Ok(())
}

/// Interprets a binary register (qudit 0 = least significant) as an integer.
pub fn register_to_value(digits: &[usize]) -> usize {
    digits.iter().enumerate().map(|(i, &b)| b << i).sum()
}

/// Writes an integer into binary register digits (qudit 0 = least
/// significant).
pub fn value_to_register(value: usize, n_bits: usize) -> Vec<usize> {
    (0..n_bits).map(|i| (value >> i) & 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::simulate_classical;
    use qudit_circuit::Schedule;

    #[test]
    fn register_value_round_trip() {
        for v in 0..32usize {
            assert_eq!(register_to_value(&value_to_register(v, 5)), v);
        }
        assert_eq!(value_to_register(6, 4), vec![0, 1, 1, 0]);
    }

    #[test]
    fn exhaustive_verification_up_to_ten_bits() {
        for n in 1..=10usize {
            let c = incrementer(n).unwrap();
            let modulus = 1usize << n;
            for value in 0..modulus {
                let input = value_to_register(value, n);
                let out = simulate_classical(&c, &input).unwrap();
                assert!(
                    out.iter().all(|&d| d < 2),
                    "n={n}, value={value}: leaked |2⟩"
                );
                assert_eq!(
                    register_to_value(&out),
                    (value + 1) % modulus,
                    "n={n}, value={value}"
                );
            }
        }
    }

    #[test]
    fn statevector_matches_for_small_widths() {
        use qudit_sim::Simulator;
        let n = 4;
        let c = incrementer(n).unwrap();
        let sim = Simulator::new();
        for value in 0..(1usize << n) {
            let input = value_to_register(value, n);
            let expected = value_to_register((value + 1) % (1 << n), n);
            let out = sim.run_on_basis_state(&c, &input).unwrap();
            assert!(
                (out.probability(&expected).unwrap() - 1.0).abs() < 1e-9,
                "value {value}"
            );
        }
    }

    #[test]
    fn uses_no_ancilla() {
        for n in [4usize, 8, 16] {
            assert_eq!(incrementer(n).unwrap().width(), n);
        }
    }

    #[test]
    fn depth_grows_polylogarithmically() {
        let depths: Vec<usize> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| Schedule::asap(&incrementer(n).unwrap()).depth() as usize)
            .collect();
        // log² signature: doubling N adds O(log N) depth, so the increments
        // between successive doublings grow by a small constant (≈4 levels),
        // far from the doubling a linear-depth circuit would show.
        let increments: Vec<isize> = depths
            .windows(2)
            .map(|w| w[1] as isize - w[0] as isize)
            .collect();
        for w in increments.windows(2) {
            let second_difference = w[1] - w[0];
            assert!(
                (0..=8).contains(&second_difference),
                "second differences should be a small constant: depths {depths:?}"
            );
        }
        for w in depths.windows(2) {
            assert!(
                (w[1] as f64) < 1.8 * w[0] as f64,
                "depth should grow sublinearly: {depths:?}"
            );
        }
    }

    #[test]
    fn wrap_around_at_maximum_value() {
        let n = 6;
        let c = incrementer(n).unwrap();
        let input = vec![1usize; n];
        let out = simulate_classical(&c, &input).unwrap();
        assert_eq!(register_to_value(&out), 0);
    }

    #[test]
    fn single_bit_incrementer_is_a_not() {
        let c = incrementer(1).unwrap();
        assert_eq!(simulate_classical(&c, &[0]).unwrap(), vec![1]);
        assert_eq!(simulate_classical(&c, &[1]).unwrap(), vec![0]);
    }
}
