//! The artificial quantum neuron (Section 5.1).
//!
//! Tacchino et al.'s quantum neuron encodes an `m = 2^N`-element ±1 input
//! vector and weight vector into the phases of `N`-qubit hypergraph states.
//! The circuit prepares the input state, applies the inverse of the weight
//! preparation, and ANDs all `N` qubits into an output qubit with a
//! Generalized Toffoli: the output activates with probability
//! `|⟨ψ_w|ψ_i⟩|²`, the (normalised squared) perceptron pre-activation. The
//! Generalized Toffoli dominates the circuit, which is why the paper calls
//! the neuron a prime target for the ancilla-free qutrit construction.

use crate::gen_toffoli::{generalized_toffoli, GeneralizedToffoliSpec};
use qudit_circuit::{Circuit, CircuitResult, Control, Gate};
use qudit_sim::Simulator;

/// A ±1 vector of length `2^n_qubits`, stored as booleans (`true` = +1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignVector {
    n_qubits: usize,
    signs: Vec<bool>,
}

impl SignVector {
    /// Creates a sign vector for `n_qubits` qubits from booleans
    /// (`true` = +1, `false` = −1).
    ///
    /// # Errors
    ///
    /// Returns an error if the length is not `2^n_qubits`.
    pub fn new(n_qubits: usize, signs: Vec<bool>) -> Result<Self, String> {
        if signs.len() != 1 << n_qubits {
            return Err(format!(
                "expected {} entries for {n_qubits} qubits, got {}",
                1usize << n_qubits,
                signs.len()
            ));
        }
        Ok(SignVector { n_qubits, signs })
    }

    /// The all-(+1) vector.
    pub fn all_plus(n_qubits: usize) -> Self {
        SignVector {
            n_qubits,
            signs: vec![true; 1 << n_qubits],
        }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The signs as ±1 integers.
    pub fn as_i8(&self) -> Vec<i8> {
        self.signs.iter().map(|&s| if s { 1 } else { -1 }).collect()
    }

    /// The normalised inner product with another sign vector:
    /// `⟨w, i⟩ / 2^N ∈ [−1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn normalized_inner_product(&self, other: &SignVector) -> f64 {
        assert_eq!(self.signs.len(), other.signs.len(), "length mismatch");
        let dot: i64 = self
            .as_i8()
            .iter()
            .zip(other.as_i8())
            .map(|(a, b)| (*a as i64) * (b as i64))
            .sum();
        dot as f64 / self.signs.len() as f64
    }
}

/// Appends the hypergraph-state phase pattern for a sign vector: for every
/// basis state with a −1 sign, a multiply-controlled Z (built with the
/// qutrit tree) flips its phase.
fn push_sign_flips(
    circuit: &mut Circuit,
    qubits: &[usize],
    signs: &SignVector,
) -> CircuitResult<()> {
    let n = qubits.len();
    for (index, &positive) in signs.signs.iter().enumerate() {
        if positive {
            continue;
        }
        let target = qubits[n - 1];
        let target_bit = (index >> (n - 1)) & 1;
        if target_bit == 0 {
            circuit.push_gate(Gate::x(3), &[target])?;
        }
        let controls: Vec<Control> = qubits[..n - 1]
            .iter()
            .enumerate()
            .map(|(i, &q)| Control::new(q, (index >> i) & 1))
            .collect();
        let spec = GeneralizedToffoliSpec {
            controls,
            target,
            target_gate: Gate::z(3),
        };
        circuit.extend(&generalized_toffoli(&spec, circuit.width())?)?;
        if target_bit == 0 {
            circuit.push_gate(Gate::x(3), &[target])?;
        }
    }
    Ok(())
}

/// Builds the quantum-neuron circuit for the given weight and input vectors.
///
/// The register has `N + 1` qutrits: qubits `0..N` carry the data and qubit
/// `N` is the output. After the circuit, the probability of measuring the
/// output in |1⟩ equals `(⟨w, i⟩ / 2^N)²`.
///
/// # Errors
///
/// Returns an error if the vectors have mismatched sizes or construction
/// fails.
pub fn neuron_circuit(weights: &SignVector, inputs: &SignVector) -> CircuitResult<Circuit> {
    if weights.n_qubits() != inputs.n_qubits() {
        return Err(qudit_circuit::CircuitError::InvalidClassicalInput {
            reason: "weight and input vectors must have the same size".to_string(),
        });
    }
    let n = weights.n_qubits();
    let mut circuit = Circuit::new(3, n + 1);
    let qubits: Vec<usize> = (0..n).collect();

    // U_i: prepare the input hypergraph state.
    for &q in &qubits {
        circuit.push_gate(Gate::h(3), &[q])?;
    }
    push_sign_flips(&mut circuit, &qubits, inputs)?;

    // U_w†: rotate the weight state onto |1…1⟩ (sign flips are self-inverse,
    // then H⊗n maps the uniform state back to |0…0⟩, then X⊗n).
    push_sign_flips(&mut circuit, &qubits, weights)?;
    for &q in &qubits {
        circuit.push_gate(Gate::h(3), &[q])?;
    }
    for &q in &qubits {
        circuit.push_gate(Gate::x(3), &[q])?;
    }

    // The activation: an N-controlled X onto the output qubit, using the
    // ancilla-free qutrit tree.
    let spec = GeneralizedToffoliSpec {
        controls: qubits.iter().map(|&q| Control::on_one(q)).collect(),
        target: n,
        target_gate: Gate::x(3),
    };
    circuit.extend(&generalized_toffoli(&spec, circuit.width())?)?;
    Ok(circuit)
}

/// Runs the neuron circuit and returns the probability that the output qubit
/// measures |1⟩ (the neuron's activation probability).
///
/// # Errors
///
/// Propagates circuit-construction and simulation failures.
pub fn neuron_activation_probability(
    weights: &SignVector,
    inputs: &SignVector,
) -> Result<f64, Box<dyn std::error::Error>> {
    let circuit = neuron_circuit(weights, inputs)?;
    let out = Simulator::new().run(&circuit)?;
    let n = weights.n_qubits();
    Ok(qudit_sim::marginal_distribution(&out, n)[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_weights_and_inputs_always_activate() {
        for n in 1..=3usize {
            let w = SignVector::new(n, (0..(1 << n)).map(|i| i % 3 != 0).collect()).unwrap();
            let p = neuron_activation_probability(&w, &w).unwrap();
            assert!((p - 1.0).abs() < 1e-9, "n={n}: p={p}");
        }
    }

    #[test]
    fn orthogonal_weights_and_inputs_never_activate() {
        // Half the signs differ → inner product 0 → activation 0.
        let n = 2;
        let w = SignVector::all_plus(n);
        let i = SignVector::new(n, vec![true, true, false, false]).unwrap();
        assert_eq!(w.normalized_inner_product(&i), 0.0);
        let p = neuron_activation_probability(&w, &i).unwrap();
        assert!(p < 1e-9, "p={p}");
    }

    #[test]
    fn activation_matches_squared_inner_product() {
        let n = 3;
        let w =
            SignVector::new(n, vec![true, false, true, true, false, true, false, false]).unwrap();
        let i =
            SignVector::new(n, vec![true, true, true, false, false, true, true, false]).unwrap();
        let expected = w.normalized_inner_product(&i).powi(2);
        let p = neuron_activation_probability(&w, &i).unwrap();
        assert!((p - expected).abs() < 1e-9, "p={p}, expected={expected}");
    }

    #[test]
    fn sign_vector_validation() {
        assert!(SignVector::new(2, vec![true; 3]).is_err());
        assert!(SignVector::new(2, vec![true; 4]).is_ok());
    }

    #[test]
    fn neuron_circuit_width_is_inputs_plus_output() {
        let w = SignVector::all_plus(3);
        let c = neuron_circuit(&w, &w).unwrap();
        assert_eq!(c.width(), 4);
    }
}
