//! Grover search with the ancilla-free multiply-controlled Z (Section 5.2,
//! Figure 6).
//!
//! Each Grover iteration needs a Z gate controlled on `N − 1` qubits (the
//! post-processing step after the oracle query). With the qutrit tree of
//! [`crate::gen_toffoli`] that gate costs `O(log N)` depth and no ancilla,
//! turning a `log M` factor of Grover's runtime into `log log M`.

use crate::gen_toffoli::{generalized_toffoli, GeneralizedToffoliSpec};
use qudit_circuit::{Circuit, CircuitResult, Control, Gate};
use qudit_core::StateVector;
use qudit_sim::Simulator;

/// Appends an `n`-qubit multiply-controlled Z selecting the basis state
/// `pattern` (a phase flip of `|pattern⟩`), using the qutrit tree with no
/// ancilla. The controls activate on the corresponding bit of `pattern`
/// (|0⟩-controls where the bit is 0), and the target is the last qubit.
fn push_pattern_phase_flip(
    circuit: &mut Circuit,
    qubits: &[usize],
    pattern: usize,
) -> CircuitResult<()> {
    let n = qubits.len();
    assert!(n >= 1, "need at least one qubit");
    let target = qubits[n - 1];
    let target_bit = (pattern >> (n - 1)) & 1;
    // Z only imparts a phase on |1⟩; when the pattern's target bit is 0 we
    // conjugate with X so the phase lands on the right branch.
    if target_bit == 0 {
        circuit.push_gate(Gate::x(3), &[target])?;
    }
    let controls: Vec<Control> = qubits[..n - 1]
        .iter()
        .enumerate()
        .map(|(i, &q)| Control::new(q, (pattern >> i) & 1))
        .collect();
    let spec = GeneralizedToffoliSpec {
        controls,
        target,
        target_gate: Gate::z(3),
    };
    circuit.extend(&generalized_toffoli(&spec, circuit.width())?)?;
    if target_bit == 0 {
        circuit.push_gate(Gate::x(3), &[target])?;
    }
    Ok(())
}

/// Builds one Grover iteration (oracle marking `marked`, then the diffusion
/// operator) on the given qubits.
fn push_grover_iteration(
    circuit: &mut Circuit,
    qubits: &[usize],
    marked: usize,
) -> CircuitResult<()> {
    // Oracle: phase-flip the marked item.
    push_pattern_phase_flip(circuit, qubits, marked)?;
    // Diffusion: H⊗n, phase-flip |0…0⟩, H⊗n (inversion about the mean, up to
    // global phase).
    for &q in qubits {
        circuit.push_gate(Gate::h(3), &[q])?;
    }
    push_pattern_phase_flip(circuit, qubits, 0)?;
    for &q in qubits {
        circuit.push_gate(Gate::h(3), &[q])?;
    }
    Ok(())
}

/// Builds a full Grover search circuit over `n_qubits` qubits (searching
/// `M = 2^n_qubits` items) for the given marked item and number of
/// iterations. The circuit uses no ancilla: width equals `n_qubits`.
///
/// # Errors
///
/// Returns an error if `marked >= 2^n_qubits` or construction fails.
pub fn grover_circuit(n_qubits: usize, marked: usize, iterations: usize) -> CircuitResult<Circuit> {
    if marked >= (1usize << n_qubits) {
        return Err(qudit_circuit::CircuitError::InvalidClassicalInput {
            reason: format!("marked item {marked} out of range for {n_qubits} qubits"),
        });
    }
    let mut circuit = Circuit::new(3, n_qubits);
    let qubits: Vec<usize> = (0..n_qubits).collect();
    for &q in &qubits {
        circuit.push_gate(Gate::h(3), &[q])?;
    }
    for _ in 0..iterations {
        push_grover_iteration(&mut circuit, &qubits, marked)?;
    }
    Ok(circuit)
}

/// The textbook-optimal number of Grover iterations for a search space of
/// `2^n_qubits` items with one marked item: `⌊π/4 · √M⌋`.
pub fn optimal_iterations(n_qubits: usize) -> usize {
    let m = (1u64 << n_qubits) as f64;
    (std::f64::consts::FRAC_PI_4 * m.sqrt()).floor() as usize
}

/// Runs the Grover circuit in the noise-free simulator and returns the
/// probability of measuring the marked item.
///
/// # Errors
///
/// Propagates circuit-construction and simulation failures.
pub fn grover_success_probability(
    n_qubits: usize,
    marked: usize,
    iterations: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let circuit = grover_circuit(n_qubits, marked, iterations)?;
    let out = Simulator::new().run(&circuit)?;
    // The marked item is a binary pattern; qubit i is bit i of the pattern.
    let digits: Vec<usize> = (0..n_qubits).map(|i| (marked >> i) & 1).collect();
    Ok(out.probability(&digits)?)
}

/// Returns the full output distribution over the `2^n_qubits` binary basis
/// states (ignoring any residual |2⟩ population, which is zero for a correct
/// circuit).
///
/// # Errors
///
/// Propagates circuit-construction and simulation failures.
pub fn grover_output_distribution(
    n_qubits: usize,
    marked: usize,
    iterations: usize,
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let circuit = grover_circuit(n_qubits, marked, iterations)?;
    let out = Simulator::new().run(&circuit)?;
    let mut probs = vec![0.0f64; 1 << n_qubits];
    for (item, slot) in probs.iter_mut().enumerate() {
        let digits: Vec<usize> = (0..n_qubits).map(|i| (item >> i) & 1).collect();
        *slot = out.probability(&digits)?;
    }
    let _ = StateVector::encode_digits(3, &[0]); // keep the core import used in docs builds
    Ok(probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_iterations_grows_with_sqrt_m() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(4), 3);
        assert_eq!(optimal_iterations(6), 6);
    }

    #[test]
    fn two_qubit_grover_finds_the_marked_item_exactly() {
        // For M = 4 a single Grover iteration succeeds with probability 1.
        for marked in 0..4usize {
            let p = grover_success_probability(2, marked, 1).unwrap();
            assert!((p - 1.0).abs() < 1e-9, "marked {marked}: p = {p}");
        }
    }

    #[test]
    fn three_qubit_grover_amplifies_the_marked_item() {
        let marked = 5;
        let p0 = grover_success_probability(3, marked, 0).unwrap();
        let p = grover_success_probability(3, marked, optimal_iterations(3)).unwrap();
        assert!((p0 - 1.0 / 8.0).abs() < 1e-9);
        assert!(p > 0.9, "optimal iterations should reach >90%: {p}");
    }

    #[test]
    fn four_qubit_grover_reaches_high_success_probability() {
        let marked = 11;
        let p = grover_success_probability(4, marked, optimal_iterations(4)).unwrap();
        assert!(p > 0.9, "p = {p}");
        // And the distribution is concentrated on the marked item.
        let dist = grover_output_distribution(4, marked, optimal_iterations(4)).unwrap();
        let best = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, marked);
    }

    #[test]
    fn too_many_iterations_overshoots() {
        // Grover's amplitude rotates past the target if run too long.
        let p_opt = grover_success_probability(3, 2, 2).unwrap();
        let p_over = grover_success_probability(3, 2, 4).unwrap();
        assert!(p_over < p_opt);
    }

    #[test]
    fn grover_uses_no_ancilla() {
        let c = grover_circuit(4, 3, 1).unwrap();
        assert_eq!(c.width(), 4);
    }

    #[test]
    fn rejects_out_of_range_marked_item() {
        assert!(grover_circuit(3, 8, 1).is_err());
    }
}
