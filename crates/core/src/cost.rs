//! Cost models for the benchmarked constructions (Table 1, Figures 9 and 10).
//!
//! Two kinds of costs are provided:
//!
//! * the paper's *analytic* cost models — the fitted constants it reports
//!   (`~633N` / `~76N` / `~38·log₂N` depth and `~397N` / `~48N` / `~6N`
//!   two-qudit gates) plus the asymptotic rows of Table 1; and
//! * *measured* costs obtained by building our constructions and analysing
//!   them with the Di & Wei expansion of three-qudit gates.

use crate::baselines::{he_log_depth, qubit_no_ancilla, qubit_one_dirty_ancilla};
use crate::gen_toffoli::n_controlled_x;
use qudit_circuit::{CircuitResult, ResourceReport};

/// The circuit constructions compared in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Construction {
    /// The paper's contribution: the ancilla-free qutrit tree (QUTRIT).
    Qutrit,
    /// The ancilla-free qubit-only construction (QUBIT, Gidney in the paper).
    Qubit,
    /// The qubit construction with one borrowed ancilla (QUBIT+ANCILLA).
    QubitAncilla,
    /// He et al.: log depth with a clean ancilla per pair of controls.
    He,
    /// Barenco et al.: quadratic-depth, ancilla-free, qubit-only.
    Barenco,
    /// Wang et al.: linear depth with qutrit controls (analytic only).
    Wang,
    /// Lanyon / Ralph: linear depth with a `d = N`-level target
    /// (analytic only).
    Lanyon,
}

impl Construction {
    /// The display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Construction::Qutrit => "QUTRIT",
            Construction::Qubit => "QUBIT",
            Construction::QubitAncilla => "QUBIT+ANCILLA",
            Construction::He => "HE",
            Construction::Barenco => "BARENCO",
            Construction::Wang => "WANG",
            Construction::Lanyon => "LANYON/RALPH",
        }
    }

    /// The three constructions benchmarked in Figures 9–11, in figure order.
    pub fn benchmarked() -> [Construction; 3] {
        [
            Construction::Qubit,
            Construction::QubitAncilla,
            Construction::Qutrit,
        ]
    }
}

/// A row of Table 1: the asymptotic properties of a construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// The construction.
    pub construction: Construction,
    /// Asymptotic depth as a function of the number of controls N.
    pub depth: &'static str,
    /// Number of ancilla required.
    pub ancilla: &'static str,
    /// The qudit types used.
    pub qudit_types: &'static str,
    /// Qualitative size of the constants.
    pub constants: &'static str,
}

/// Returns Table 1 (asymptotic comparison of N-controlled gate
/// decompositions).
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            construction: Construction::Qutrit,
            depth: "log N",
            ancilla: "0",
            qudit_types: "controls are qutrits",
            constants: "small",
        },
        Table1Row {
            construction: Construction::Qubit,
            depth: "N",
            ancilla: "0",
            qudit_types: "qubits",
            constants: "large",
        },
        Table1Row {
            construction: Construction::He,
            depth: "log N",
            ancilla: "N",
            qudit_types: "qubits",
            constants: "small",
        },
        Table1Row {
            construction: Construction::Barenco,
            depth: "N^2",
            ancilla: "0",
            qudit_types: "qubits",
            constants: "small",
        },
        Table1Row {
            construction: Construction::Wang,
            depth: "N",
            ancilla: "0",
            qudit_types: "controls are qutrits",
            constants: "small",
        },
        Table1Row {
            construction: Construction::Lanyon,
            depth: "N",
            ancilla: "0",
            qudit_types: "target is d = N-level qudit",
            constants: "small",
        },
    ]
}

/// The paper's analytic circuit-depth model for the three benchmarked
/// constructions (the fitted curves of Figure 9).
pub fn paper_depth_model(construction: Construction, n_controls: usize) -> f64 {
    let n = n_controls as f64;
    match construction {
        Construction::Qutrit => 38.0 * n.log2(),
        Construction::Qubit => 633.0 * n,
        Construction::QubitAncilla => 76.0 * n,
        Construction::He => 48.0 * n.log2(),
        Construction::Barenco => 24.0 * n * n,
        Construction::Wang | Construction::Lanyon => 12.0 * n,
    }
}

/// The paper's analytic two-qudit gate-count model for the three benchmarked
/// constructions (the fitted curves of Figure 10).
pub fn paper_two_qudit_gate_model(construction: Construction, n_controls: usize) -> f64 {
    let n = n_controls as f64;
    match construction {
        Construction::Qutrit => 6.0 * n,
        Construction::Qubit => 397.0 * n,
        Construction::QubitAncilla => 48.0 * n,
        Construction::He => 12.0 * n,
        Construction::Barenco => 24.0 * n * n,
        Construction::Wang | Construction::Lanyon => 12.0 * n,
    }
}

/// Builds the circuit for a construction (where we implement one) and
/// measures it with the [`ResourceReport`] analyzer — the same analyzer
/// the compiler's pass pipeline reports pre/post resources with, so every
/// count column in the paper reproductions comes from one place. Physical
/// columns are *measured on the lowered circuit*: the compiler's
/// `PassLevel::Physical` pipeline expands every ≥3-qudit operation into
/// its Di & Wei realisation and the two-qudit count and physical depth are
/// counted on the result (the golden suite pins that these equal the
/// values the per-arity weights used to infer).
///
/// Returns `None` for the analytic-only constructions (Wang, Lanyon).
///
/// # Errors
///
/// Propagates circuit-construction failures.
pub fn measured_costs(
    construction: Construction,
    n_controls: usize,
) -> CircuitResult<Option<ResourceReport>> {
    let circuit = match construction {
        Construction::Qutrit => Some(n_controlled_x(n_controls)?),
        Construction::Qubit | Construction::Barenco => Some(qubit_no_ancilla(n_controls, 2)?),
        Construction::QubitAncilla => Some(qubit_one_dirty_ancilla(n_controls, 2)?),
        Construction::He => Some(he_log_depth(n_controls, 2)?),
        Construction::Wang | Construction::Lanyon => None,
    };
    Ok(circuit.as_ref().map(ResourceReport::measure_physical))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_matching_the_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        let qutrit = &rows[0];
        assert_eq!(qutrit.depth, "log N");
        assert_eq!(qutrit.ancilla, "0");
        let he = rows
            .iter()
            .find(|r| r.construction == Construction::He)
            .unwrap();
        assert_eq!(he.ancilla, "N");
    }

    #[test]
    fn paper_models_reproduce_figure_9_ordering() {
        for n in [25usize, 50, 100, 200] {
            let qutrit = paper_depth_model(Construction::Qutrit, n);
            let ancilla = paper_depth_model(Construction::QubitAncilla, n);
            let qubit = paper_depth_model(Construction::Qubit, n);
            assert!(qutrit < ancilla && ancilla < qubit, "ordering at n={n}");
        }
        // The QUBIT/QUBIT+ANCILLA ratio is the paper's factor-of-8 ancilla
        // benefit (633/76 ≈ 8.3).
        let ratio = paper_depth_model(Construction::Qubit, 100)
            / paper_depth_model(Construction::QubitAncilla, 100);
        assert!(ratio > 8.0 && ratio < 8.6);
    }

    #[test]
    fn paper_models_reproduce_figure_10_70x_gap() {
        let ratio = paper_two_qudit_gate_model(Construction::Qubit, 100)
            / paper_two_qudit_gate_model(Construction::Qutrit, 100);
        assert!((ratio - 397.0 / 6.0).abs() < 1e-9);
        assert!(ratio > 60.0, "the paper quotes a ~70x improvement");
    }

    #[test]
    fn measured_qutrit_costs_track_the_analytic_model() {
        for n in [16usize, 64] {
            let report = measured_costs(Construction::Qutrit, n).unwrap().unwrap();
            let model = paper_two_qudit_gate_model(Construction::Qutrit, n);
            let measured = report.two_qudit_gates() as f64;
            assert!(
                (measured - model).abs() / model < 0.35,
                "n={n}: measured {measured} vs model {model}"
            );
        }
    }

    #[test]
    fn measured_qutrit_depth_is_logarithmic_and_far_below_qubit_constructions() {
        let n = 32;
        let qutrit = measured_costs(Construction::Qutrit, n).unwrap().unwrap();
        let ancilla = measured_costs(Construction::QubitAncilla, n)
            .unwrap()
            .unwrap();
        let qubit = measured_costs(Construction::Qubit, n).unwrap().unwrap();
        assert!(qutrit.depth() < ancilla.depth());
        assert!(ancilla.depth() < qubit.depth());
    }

    #[test]
    fn analytic_only_constructions_return_none() {
        assert!(measured_costs(Construction::Wang, 8).unwrap().is_none());
        assert!(measured_costs(Construction::Lanyon, 8).unwrap().is_none());
    }

    #[test]
    fn benchmarked_list_matches_figure_order() {
        let names: Vec<&str> = Construction::benchmarked()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(names, vec!["QUBIT", "QUBIT+ANCILLA", "QUTRIT"]);
    }
}
