//! Verification helpers (the paper's "verification scripts", Section 4.2).
//!
//! The constructions are verified two ways, as in the paper: exhaustively on
//! every classical input with the linear-space classical simulator, and (for
//! small widths or non-classical circuits) against the quantum simulators —
//! routed through the `qudit-api` façade, so verification sweeps exercise
//! exactly the compile-once job path production callers use.

use qudit_api::{BackendKind, Executor, JobSpec, PassLevel};
use qudit_circuit::classical::{all_binary_basis_states, simulate_classical};
use qudit_circuit::{Circuit, CircuitResult};
use qudit_core::{Complex, StateVector};

/// A verification failure: the circuit mapped `input` to `actual` instead of
/// `expected`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The classical input digits.
    pub input: Vec<usize>,
    /// The expected output digits.
    pub expected: Vec<usize>,
    /// The observed output digits.
    pub actual: Vec<usize>,
}

/// Exhaustively verifies (with the classical simulator) that `circuit`
/// implements an N-controlled-X: the target flips iff all controls are |1⟩
/// and every other qudit is preserved.
///
/// # Errors
///
/// Propagates classical-simulation errors (e.g. non-classical gates).
pub fn verify_n_controlled_x_classical(
    circuit: &Circuit,
    n_controls: usize,
    target: usize,
) -> CircuitResult<Option<Counterexample>> {
    for input in all_binary_basis_states(circuit.width()) {
        let mut expected = input.clone();
        if input[..n_controls].iter().all(|&b| b == 1) {
            expected[target] = 1 - expected[target];
        }
        let actual = simulate_classical(circuit, &input)?;
        if actual != expected {
            return Ok(Some(Counterexample {
                input,
                expected,
                actual,
            }));
        }
    }
    Ok(None)
}

/// Verifies with the state-vector engine that `circuit` implements an
/// N-controlled-X exactly (amplitude 1 on the expected output, so no stray
/// relative phases), on every binary basis input.
///
/// Use for circuits containing non-classical gates (e.g. the qubit-only
/// baseline with controlled roots of X). Exponential in the width — keep the
/// width at or below ~12. The circuit compiles once through the façade
/// ([`Executor::compile_statevector`]); the `2^width` basis sweep only
/// replays the compiled kernels.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn verify_n_controlled_x_statevector(
    circuit: &Circuit,
    n_controls: usize,
    target: usize,
) -> Result<Option<Counterexample>, Box<dyn std::error::Error>> {
    let compiled = Executor::new().compile_statevector(circuit, PassLevel::Ideal);
    for input in all_binary_basis_states(circuit.width()) {
        let mut expected = input.clone();
        if input[..n_controls].iter().all(|&b| b == 1) {
            expected[target] = 1 - expected[target];
        }
        let out = compiled.run(StateVector::from_basis_state(circuit.dim(), &input)?)?;
        let amp = out.amplitude(&expected)?;
        if !amp.approx_eq(Complex::ONE, 1e-6) {
            return Ok(Some(Counterexample {
                input: input.clone(),
                expected,
                actual: out.most_likely_state(),
            }));
        }
    }
    Ok(None)
}

/// Verifies through a façade [`Executor`] that `circuit` implements an
/// N-controlled-X up to phases: on every binary basis input, all the output
/// probability must sit on the expected basis state.
///
/// This is the backend-agnostic routing of the verification scripts: the
/// same check runs on the state-vector engine and the exact density-matrix
/// engine (the bench binaries expose the choice as `--backend`). The sweep
/// is submitted as noise-free [`JobSpec`]s with explicit basis sweeps, in
/// chunks of `VERIFY_SWEEP_CHUNK` inputs: the circuit compiles once (the
/// executor's structure-keyed cache serves every chunk) while memory stays
/// bounded — a job's result holds all its output states, so one giant sweep
/// would keep `2^width` full state vectors resident — and a broken circuit
/// stops at the first failing chunk instead of paying the whole exponential
/// sweep. Probability rather than amplitude is compared because a density
/// matrix carries no global phase; use
/// [`verify_n_controlled_x_statevector`] when the phase itself must be
/// pinned down.
///
/// # Errors
///
/// Propagates job-validation and execution errors.
pub fn verify_n_controlled_x_backend(
    executor: &Executor,
    backend: BackendKind,
    circuit: &Circuit,
    n_controls: usize,
    target: usize,
) -> Result<Option<Counterexample>, Box<dyn std::error::Error>> {
    let inputs: Vec<Vec<usize>> = all_binary_basis_states(circuit.width()).collect();
    for chunk in inputs.chunks(VERIFY_SWEEP_CHUNK) {
        let spec = JobSpec::builder(circuit.clone())
            .backend(backend)
            .sweep(chunk.to_vec())
            .build()?;
        let result = executor.run(&spec)?;
        for (input, out) in chunk.iter().zip(result.states()?) {
            let mut expected = input.clone();
            if input[..n_controls].iter().all(|&b| b == 1) {
                expected[target] = 1 - expected[target];
            }
            let p = out.probability(&expected)?;
            if (p - 1.0).abs() > 1e-6 {
                return Ok(Some(Counterexample {
                    input: input.clone(),
                    expected,
                    actual: out.most_likely_state(),
                }));
            }
        }
    }
    Ok(None)
}

/// Basis inputs per verification job: bounds how many output states one
/// sweep's [`ExecutionResult`](qudit_api::ExecutionResult) holds resident
/// at a time (32 states of a 12-qutrit register ≈ 0.25 GB is the worst
/// case the verifiers' documented ~12-qudit width limit allows).
const VERIFY_SWEEP_CHUNK: usize = 32;

/// Exhaustively verifies that `circuit` implements +1 mod 2^N on a binary
/// register (qudit 0 = least significant bit).
///
/// # Errors
///
/// Propagates classical-simulation errors.
pub fn verify_incrementer_classical(circuit: &Circuit) -> CircuitResult<Option<Counterexample>> {
    let n = circuit.width();
    let modulus = 1usize << n;
    for value in 0..modulus {
        let input: Vec<usize> = (0..n).map(|i| (value >> i) & 1).collect();
        let next = (value + 1) % modulus;
        let expected: Vec<usize> = (0..n).map(|i| (next >> i) & 1).collect();
        let actual = simulate_classical(circuit, &input)?;
        if actual != expected {
            return Ok(Some(Counterexample {
                input,
                expected,
                actual,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
    use crate::gen_toffoli::n_controlled_x;
    use crate::incrementer::incrementer;

    #[test]
    fn qutrit_tree_passes_classical_verification() {
        for n in [3usize, 6, 8] {
            let c = n_controlled_x(n).unwrap();
            assert_eq!(verify_n_controlled_x_classical(&c, n, n).unwrap(), None);
        }
    }

    #[test]
    fn qubit_ancilla_baseline_passes_classical_verification() {
        let n = 5;
        let c = qubit_one_dirty_ancilla(n, 2).unwrap();
        assert_eq!(verify_n_controlled_x_classical(&c, n, n).unwrap(), None);
    }

    #[test]
    fn qubit_baseline_passes_statevector_verification() {
        let n = 4;
        let c = qubit_no_ancilla(n, 2).unwrap();
        assert_eq!(verify_n_controlled_x_statevector(&c, n, n).unwrap(), None);
    }

    #[test]
    fn qutrit_tree_passes_verification_on_both_backends() {
        let n = 3;
        let c = n_controlled_x(n).unwrap();
        let executor = Executor::new();
        for backend in [BackendKind::Trajectory, BackendKind::DensityMatrix] {
            assert_eq!(
                verify_n_controlled_x_backend(&executor, backend, &c, n, n).unwrap(),
                None,
                "failed on the {} backend",
                backend.name()
            );
        }
    }

    #[test]
    fn backend_verification_catches_a_broken_circuit() {
        let mut c = qudit_circuit::Circuit::new(3, 3);
        c.push_gate(qudit_circuit::Gate::x(3), &[2]).unwrap();
        let cex =
            verify_n_controlled_x_backend(&Executor::new(), BackendKind::DensityMatrix, &c, 2, 2)
                .unwrap()
                .expect("a bare X is not a CCX");
        assert_ne!(cex.expected, cex.actual);
    }

    #[test]
    fn incrementer_passes_verification() {
        for n in [3usize, 6] {
            let c = incrementer(n).unwrap();
            assert_eq!(verify_incrementer_classical(&c).unwrap(), None);
        }
    }

    #[test]
    fn broken_circuit_yields_a_counterexample() {
        // A circuit that is *not* an N-controlled X: a bare X on the target.
        let mut c = qudit_circuit::Circuit::new(3, 3);
        c.push_gate(qudit_circuit::Gate::x(3), &[2]).unwrap();
        let cex = verify_n_controlled_x_classical(&c, 2, 2).unwrap();
        assert!(cex.is_some());
        let cex = cex.unwrap();
        assert_ne!(cex.expected, cex.actual);
    }
}
