//! Entangled-state preparation circuits: GHZ and W states.

use crate::check_params;
use qudit_circuit::{Circuit, CircuitResult, Control, Gate};

/// Prepares the `n`-qudit GHZ state `(1/√d) Σ_j |j j … j⟩` from `|0…0⟩`:
/// one [`Gate::fourier`] on qudit 0 (uniform superposition over levels),
/// then a chain of `n − 1` [`Gate::csum`] gates copying the level down the
/// register. Counts: 1 single-qudit and `n − 1` two-qudit gates.
///
/// # Errors
///
/// Returns [`qudit_circuit::CircuitError::IncompatibleCircuits`] for
/// `dim < 2` or `n = 0`.
pub fn ghz(dim: usize, n: usize) -> CircuitResult<Circuit> {
    check_params(dim, n, "ghz")?;
    let mut c = Circuit::new(dim, n);
    c.push_gate(Gate::fourier(dim), &[0])?;
    for q in 0..n - 1 {
        c.push_gate(Gate::csum(dim), &[q, q + 1])?;
    }
    Ok(c)
}

/// Prepares the `n`-qudit W state `(1/√n) Σ_i |0 … 1 … 0⟩` (the single
/// excitation in the |0⟩/|1⟩ subspace at position `i`) from `|0…0⟩`.
///
/// Uses the cascade construction: X on qudit 0, then for each link a
/// controlled [`Gate::ry01`] with angle `θᵢ = 2·arccos(√(1/(n−i)))`
/// splitting the excitation amplitude, followed by a CNOT handing the
/// remaining excitation forward. Counts: 1 single-qudit and `2(n − 1)`
/// two-qudit gates. Works for any `dim ≥ 2` since it only populates the
/// |0⟩/|1⟩ subspace.
///
/// # Errors
///
/// Returns [`qudit_circuit::CircuitError::IncompatibleCircuits`] for
/// `dim < 2` or `n = 0`.
pub fn w_state(dim: usize, n: usize) -> CircuitResult<Circuit> {
    check_params(dim, n, "w_state")?;
    let mut c = Circuit::new(dim, n);
    c.push_gate(Gate::x(dim), &[0])?;
    for i in 0..n - 1 {
        // Splits amplitude √(1/(n−i)) off onto qudit i staying excited:
        // Ry(θ)|0⟩ = cos(θ/2)|0⟩ + sin(θ/2)|1⟩ with cos(θ/2) = √(1/(n−i)).
        let theta = 2.0 * (1.0 / (n - i) as f64).sqrt().acos();
        c.push_controlled(Gate::ry01(dim, theta), &[Control::new(i, 1)], &[i + 1])?;
        c.push_controlled(Gate::x(dim), &[Control::new(i + 1, 1)], &[i])?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_counts_match_the_documented_formula() {
        for (d, n) in [(2, 4), (3, 3), (5, 2)] {
            let c = ghz(d, n).unwrap();
            assert_eq!(c.len(), n, "d={d} n={n}");
        }
        assert_eq!(ghz(3, 1).unwrap().len(), 1);
    }

    #[test]
    fn w_state_counts_match_the_documented_formula() {
        for (d, n) in [(2, 4), (3, 3)] {
            let c = w_state(d, n).unwrap();
            assert_eq!(c.len(), 1 + 2 * (n - 1), "d={d} n={n}");
        }
    }

    #[test]
    fn generators_reject_degenerate_parameters() {
        assert!(ghz(1, 3).is_err());
        assert!(ghz(3, 0).is_err());
        assert!(w_state(0, 2).is_err());
        assert!(w_state(2, 0).is_err());
    }
}
