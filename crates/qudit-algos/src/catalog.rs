//! A registry of standard small algorithm instances.
//!
//! The bench binaries (`crossval`, `algos`, the load generators) and the
//! CI invariance job all iterate this one list instead of hand-maintaining
//! their own case tables, so a new generator added here shows up in every
//! harness at once.

use crate::{ghz, phase_estimation, qft, qft_adder, qft_multiplier, ripple_adder, w_state};
use qudit_circuit::{Circuit, CircuitResult};
use qudit_core::gates::qudit::clock;

/// One named algorithm instance at a standard small size: a generator
/// plus the `(dim, size)` it is instantiated at, kept small enough that
/// trajectory/density cross-validation stays tractable.
pub struct AlgoCase {
    /// Stable case name, e.g. `qft_d3_n3` (used in bench reports and CI).
    pub name: &'static str,
    /// Qudit dimension the instance runs at.
    pub dim: usize,
    /// Generator size parameter (digits per register, not total width).
    pub size: usize,
    builder: fn(usize, usize) -> CircuitResult<Circuit>,
}

impl AlgoCase {
    /// Builds the instance's circuit.
    ///
    /// # Panics
    ///
    /// Never for catalog entries — their `(dim, size)` are valid by
    /// construction (covered by the `every_case_builds` test).
    pub fn circuit(&self) -> Circuit {
        (self.builder)(self.dim, self.size).expect("catalog sizes are valid")
    }
}

/// Phase estimation over the canonical clock unitary
/// `diag(1, ω, ω², …)`, whose eigenphases `j/d` are exactly
/// representable in one counting digit.
fn clock_phase_estimation(dim: usize, t: usize) -> CircuitResult<Circuit> {
    phase_estimation(dim, t, &clock(dim))
}

/// The standard case list: every generator family at a qutrit size plus
/// a qubit baseline for the families the paper compares across radix.
pub fn catalog() -> Vec<AlgoCase> {
    vec![
        AlgoCase {
            name: "qft_d3_n3",
            dim: 3,
            size: 3,
            builder: qft,
        },
        AlgoCase {
            name: "qft_d2_n4",
            dim: 2,
            size: 4,
            builder: qft,
        },
        AlgoCase {
            name: "ripple_adder_d3_n2",
            dim: 3,
            size: 2,
            builder: ripple_adder,
        },
        AlgoCase {
            name: "ripple_adder_d2_n2",
            dim: 2,
            size: 2,
            builder: ripple_adder,
        },
        AlgoCase {
            name: "qft_adder_d3_n2",
            dim: 3,
            size: 2,
            builder: qft_adder,
        },
        AlgoCase {
            name: "qft_multiplier_d3_n2",
            dim: 3,
            size: 2,
            builder: qft_multiplier,
        },
        AlgoCase {
            name: "phase_est_d3_t2",
            dim: 3,
            size: 2,
            builder: clock_phase_estimation,
        },
        AlgoCase {
            name: "ghz_d3_n4",
            dim: 3,
            size: 4,
            builder: ghz,
        },
        AlgoCase {
            name: "w_state_d3_n4",
            dim: 3,
            size: 4,
            builder: w_state,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_builds_and_names_are_unique() {
        let cases = catalog();
        let mut names: Vec<_> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len(), "duplicate case names");
        for case in &cases {
            let c = case.circuit();
            assert_eq!(c.dim(), case.dim, "{}", case.name);
            assert!(!c.is_empty(), "{} is empty", case.name);
            assert!(c.width() <= 8, "{} too wide for crossval", case.name);
        }
    }
}
