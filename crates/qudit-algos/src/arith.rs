//! The ripple-carry adder with the paper's intermediate-qutrit carries.

use crate::check_params;
use qudit_circuit::{Circuit, CircuitResult, Control, Gate};

/// The Cuccaro ripple-carry adder on binary-valued registers:
/// `|c₀, b, a, z⟩ → |c₀, a+b mod 2ⁿ, a, z ⊕ carry⟩` with qudit layout
/// `[c₀, b₀, a₀, b₁, a₁, …, b_{n−1}, a_{n−1}, z]` (big-endian bits, width
/// `2n + 2`). `c₀` is the borrowed carry-in ancilla (restored to |0⟩) and
/// `z` receives the carry-out.
///
/// Each MAJ/UMA block needs one Toffoli. For `dim ≥ 3` it is the paper's
/// Figure-4 construction — the carry conjunction rides the target qudit's
/// |2⟩ level through a controlled increment/decrement pair, three two-qudit
/// gates, no ancilla. For `dim = 2` the Toffoli stays a genuine
/// doubly-controlled X that the `Physical` pass level lowers through the
/// Di & Wei construction (6 two-qudit gates), reproducing the paper's
/// qubit-baseline vs qutrit comparison at whole-algorithm scale.
///
/// # Errors
///
/// Returns [`qudit_circuit::CircuitError::IncompatibleCircuits`] for
/// `dim < 2` or `n = 0`.
pub fn ripple_adder(dim: usize, n: usize) -> CircuitResult<Circuit> {
    check_params(dim, n, "ripple_adder")?;
    let width = 2 * n + 2;
    let mut c = Circuit::new(dim, width);
    // Register offsets in the interleaved layout.
    let b = |i: usize| 1 + 2 * i;
    let a = |i: usize| 2 + 2 * i;
    let z = width - 1;

    // MAJ(c, b, a): CX a→b, CX a→c, Toffoli(c, b → a).
    let maj = |c: &mut Circuit, carry: usize, bi: usize, ai: usize| -> CircuitResult<()> {
        cx(c, ai, bi)?;
        cx(c, ai, carry)?;
        toffoli(c, carry, bi, ai)
    };
    // UMA(c, b, a): Toffoli(c, b → a), CX a→c, CX c→b.
    let uma = |c: &mut Circuit, carry: usize, bi: usize, ai: usize| -> CircuitResult<()> {
        toffoli(c, carry, bi, ai)?;
        cx(c, ai, carry)?;
        cx(c, carry, bi)
    };

    // Big-endian registers: the least-significant bit pair sits at index
    // n−1, so the carry ripples from there down to index 0 and out to z.
    maj(&mut c, 0, b(n - 1), a(n - 1))?;
    for i in (0..n - 1).rev() {
        maj(&mut c, a(i + 1), b(i), a(i))?;
    }
    cx(&mut c, a(0), z)?;
    for i in 0..n - 1 {
        uma(&mut c, a(i + 1), b(i), a(i))?;
    }
    uma(&mut c, 0, b(n - 1), a(n - 1))?;
    Ok(c)
}

/// A CNOT on the |0⟩/|1⟩ subspace (control fires on level 1).
fn cx(c: &mut Circuit, control: usize, target: usize) -> CircuitResult<()> {
    let dim = c.dim();
    c.push_controlled(Gate::x(dim), &[Control::new(control, 1)], &[target])
}

/// A Toffoli on binary inputs: the paper's Figure-4 intermediate-qutrit
/// construction for `dim ≥ 3`, a genuine doubly-controlled X for
/// `dim = 2`.
fn toffoli(c: &mut Circuit, c1: usize, c2: usize, target: usize) -> CircuitResult<()> {
    let dim = c.dim();
    if dim >= 3 {
        c.push_controlled(Gate::increment(dim), &[Control::new(c1, 1)], &[c2])?;
        c.push_controlled(Gate::x(dim), &[Control::new(c2, 2)], &[target])?;
        c.push_controlled(Gate::decrement(dim), &[Control::new(c1, 1)], &[c2])
    } else {
        c.push_controlled(
            Gate::x(2),
            &[Control::new(c1, 1), Control::new(c2, 1)],
            &[target],
        )
    }
}

/// Encodes a [`ripple_adder`] input: `a` and `b` as `n`-bit big-endian
/// values placed into the interleaved register layout (carries zeroed).
/// Useful for truth-table sweeps against the classical simulator or as a
/// basis input for the quantum backends.
pub fn adder_input(n: usize, a_val: usize, b_val: usize) -> Vec<usize> {
    let mut digits = vec![0usize; 2 * n + 2];
    for i in 0..n {
        digits[1 + 2 * i] = (b_val >> (n - 1 - i)) & 1;
        digits[2 + 2 * i] = (a_val >> (n - 1 - i)) & 1;
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::classical::simulate_classical;

    /// Exhaustive truth-table check of the adder for one dimension.
    fn check_truth_table(dim: usize, n: usize) {
        let adder = ripple_adder(dim, n).unwrap();
        for a_val in 0..1usize << n {
            for b_val in 0..1usize << n {
                let out = simulate_classical(&adder, &adder_input(n, a_val, b_val)).unwrap();
                let sum = a_val + b_val;
                let mut b_out = 0usize;
                for i in 0..n {
                    b_out = (b_out << 1) | out[1 + 2 * i];
                }
                let mut a_out = 0usize;
                for i in 0..n {
                    a_out = (a_out << 1) | out[2 + 2 * i];
                }
                assert_eq!(b_out, sum % (1 << n), "d={dim} {a_val}+{b_val}");
                assert_eq!(out[2 * n + 1], sum >> n, "d={dim} carry of {a_val}+{b_val}");
                assert_eq!(a_out, a_val, "d={dim} a register must be restored");
                assert_eq!(out[0], 0, "d={dim} carry-in ancilla must be restored");
            }
        }
    }

    #[test]
    fn qutrit_adder_adds_exhaustively() {
        check_truth_table(3, 1);
        check_truth_table(3, 3);
    }

    #[test]
    fn qubit_adder_adds_exhaustively() {
        check_truth_table(2, 2);
    }

    #[test]
    fn qutrit_adder_uses_only_two_qudit_gates() {
        let c = ripple_adder(3, 4).unwrap();
        assert!(c.iter().all(|op| op.qudits().len() <= 2));
    }
}
