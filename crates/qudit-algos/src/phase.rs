//! Quantum phase estimation over a supplied single-qudit unitary.

use crate::check_params;
use crate::qft::qft_inverse;
use qudit_circuit::{Circuit, CircuitError, CircuitResult, Control, Gate};
use qudit_core::CMatrix;

/// Quantum phase estimation of a single-qudit unitary `u` with `t`
/// counting digits of precision: width `t + 1`, counting register
/// `[0, t)` (big-endian), target qudit `t`.
///
/// With the target prepared in an eigenvector `U|ψ⟩ = e^{2πiφ}|ψ⟩` and
/// `φ = x/d^t` exact, measuring the counting register after this circuit
/// yields the digits of `x` with certainty. Structure: one
/// [`Gate::fourier`] per counting digit, then per digit `j` and control
/// level `l ≥ 1` a controlled `U^{l·d^{t−1−j}}` on the target, then the
/// inverse QFT on the counting register. Counts: `t` Fourier gates,
/// `t·(d−1)` controlled powers, plus the [`qft_inverse`] gates.
///
/// # Errors
///
/// Returns [`CircuitError::IncompatibleCircuits`] for `dim < 2`, `t = 0`,
/// a non-`dim×dim` or non-unitary `u`, or `d^t` overflowing the power
/// exponent range.
pub fn phase_estimation(dim: usize, t: usize, u: &CMatrix) -> CircuitResult<Circuit> {
    check_params(dim, t, "phase_estimation")?;
    if u.rows() != dim || u.cols() != dim {
        return Err(CircuitError::IncompatibleCircuits {
            reason: format!(
                "phase_estimation needs a {dim}×{dim} unitary, got {}×{}",
                u.rows(),
                u.cols()
            ),
        });
    }
    if !u.is_unitary(1e-9) {
        return Err(CircuitError::IncompatibleCircuits {
            reason: "phase_estimation needs a unitary matrix".into(),
        });
    }
    let mut c = Circuit::new(dim, t + 1);
    for j in 0..t {
        c.push_gate(Gate::fourier(dim), &[j])?;
    }
    for j in 0..t {
        // Counting digit j carries weight d^{t−1−j}; level l of the control
        // applies U^{l·d^{t−1−j}}, one gate per nonzero level.
        let weight = (dim as u64)
            .checked_pow((t - 1 - j) as u32)
            .filter(|w| *w <= u32::MAX as u64)
            .ok_or_else(|| CircuitError::IncompatibleCircuits {
                reason: format!("phase_estimation power d^{} overflows", t - 1 - j),
            })?;
        for l in 1..dim {
            let exponent = l as u64 * weight;
            if exponent > u32::MAX as u64 {
                return Err(CircuitError::IncompatibleCircuits {
                    reason: format!("phase_estimation power {exponent} overflows"),
                });
            }
            let powered = u.pow(exponent as u32);
            let gate = Gate::single(format!("U^{exponent}"), dim, powered)?;
            c.push_controlled(gate, &[Control::new(j, l)], &[t])?;
        }
    }
    c.extend(&qft_inverse(dim, t)?)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Complex;

    #[test]
    fn counts_match_the_documented_formula() {
        let u = CMatrix::diagonal(&[Complex::ONE, Complex::cis(1.0), Complex::cis(2.0)]);
        for t in [1usize, 3] {
            let c = phase_estimation(3, t, &u).unwrap();
            let qft_inv_len = t + t * (t - 1) / 2 + t / 2;
            assert_eq!(c.len(), t + t * 2 + qft_inv_len, "t={t}");
            assert_eq!(c.width(), t + 1);
        }
    }

    #[test]
    fn rejects_bad_unitaries_and_degenerate_parameters() {
        let u3 = CMatrix::identity(3);
        assert!(phase_estimation(3, 0, &u3).is_err());
        assert!(phase_estimation(1, 2, &CMatrix::identity(1)).is_err());
        // Wrong shape for the stated dimension.
        assert!(phase_estimation(2, 2, &u3).is_err());
        // Non-unitary matrix.
        let bad = CMatrix::diagonal(&[Complex::ONE, Complex::new(2.0, 0.0)]);
        assert!(phase_estimation(2, 2, &bad).is_err());
    }
}
