//! The qudit Fourier transform and the arithmetic built on top of it.

use crate::check_params;
use qudit_circuit::{Circuit, CircuitResult, Control, Gate};

/// The quantum Fourier transform over `Z_{d^n}` on `width` digits
/// (big-endian): `|x⟩ → (1/√d^n) Σ_y e^{2πi·x·y/d^n} |y⟩`.
///
/// Structure: per digit one [`Gate::fourier`] plus a ladder of
/// [`Gate::controlled_phase`] gates to every less-significant digit, then
/// `⌊n/2⌋` SWAPs restoring big-endian digit order. Counts: `n` Fourier
/// gates, `n(n−1)/2` controlled phases, `⌊n/2⌋` SWAPs.
///
/// # Errors
///
/// Returns [`qudit_circuit::CircuitError::IncompatibleCircuits`] for
/// `dim < 2` or an empty register.
pub fn qft(dim: usize, width: usize) -> CircuitResult<Circuit> {
    check_params(dim, width, "qft")?;
    let mut c = Circuit::new(dim, width);
    qft_rotations(&mut c, 0, width)?;
    for q in 0..width / 2 {
        c.push_gate(Gate::swap(dim), &[q, width - 1 - q])?;
    }
    Ok(c)
}

/// The inverse Fourier transform over `Z_{d^n}` — exactly
/// [`qft`]`.inverse()`.
///
/// # Errors
///
/// Same conditions as [`qft`].
pub fn qft_inverse(dim: usize, width: usize) -> CircuitResult<Circuit> {
    Ok(qft(dim, width)?.inverse())
}

/// The rotation stage of the QFT on the contiguous register
/// `[start, start+len)`, *without* the final digit-reversal SWAPs: after
/// this, digit `start+j` is in the state `(1/√d) Σ_y e^{2πi·x·y/d^{n−j}}
/// |y⟩` (reversed digit order — the value's Fourier digit `n−1−j`). This
/// is the form arithmetic in Fourier space composes around.
fn qft_rotations(c: &mut Circuit, start: usize, len: usize) -> CircuitResult<()> {
    let dim = c.dim();
    for j in 0..len {
        c.push_gate(Gate::fourier(dim), &[start + j])?;
        for k in j + 1..len {
            // Distance-(k−j) digit pair: phase e^{2πi·a·b/d^{k−j+1}}.
            let order = (k - j + 1) as u32;
            c.push_gate(Gate::controlled_phase(dim, order), &[start + k, start + j])?;
        }
    }
    Ok(())
}

/// The Draper adder over `Z_{d^n}`: registers `a = [0, n)` and
/// `b = [n, 2n)` (big-endian), computing `|a, b⟩ → |a, a + b mod d^n⟩`
/// entirely in Fourier space — QFT on `b`, one controlled phase per
/// digit pair `(aᵢ, bⱼ)` with `i + j ≥ n − 1`, inverse QFT on `b`. No
/// ancillas and no carries: `n(n+1)/2` controlled phases between the two
/// QFT stages.
///
/// # Errors
///
/// Returns [`qudit_circuit::CircuitError::IncompatibleCircuits`] for
/// `dim < 2` or `n = 0`.
pub fn qft_adder(dim: usize, n: usize) -> CircuitResult<Circuit> {
    check_params(dim, n, "qft_adder")?;
    let mut c = Circuit::new(dim, 2 * n);
    qft_rotations(&mut c, n, n)?;
    for i in 0..n {
        for j in 0..=i {
            // a_i carries weight d^{n-1-i}; Fourier digit b_{n+j} has phase
            // base d^{n-j}, so the joint phase is e^{2πi·a·b·d^{j-i-1}} —
            // an integer multiple of 2π (identity) unless j ≤ i.
            let order = (i + 1 - j) as u32;
            c.push_gate(Gate::controlled_phase(dim, order), &[i, n + j])?;
        }
    }
    // Invert only the rotation stage (the adder works in the little-endian
    // Fourier order, so no SWAP pairs are needed at all).
    let mut rotations = Circuit::new(dim, 2 * n);
    qft_rotations(&mut rotations, n, n)?;
    c.extend(&rotations.inverse())?;
    Ok(c)
}

/// The QFT multiplier over `Z_{d^n}`: registers `a = [0, n)`,
/// `b = [n, 2n)` and `p = [2n, 3n)` (big-endian), computing
/// `|a, b, p⟩ → |a, b, p + a·b mod d^n⟩`. `p` is rotated into Fourier
/// space and every level pair `(lₐ, l_b)` of every digit pair `(aᵢ, bⱼ)`
/// contributes a doubly-controlled [`Gate::phase_ramp`] — a 3-qudit
/// operation the `Physical` pass level lowers through the paper's Di & Wei
/// construction.
///
/// # Errors
///
/// Returns [`qudit_circuit::CircuitError::IncompatibleCircuits`] for
/// `dim < 2` or `n = 0`.
pub fn qft_multiplier(dim: usize, n: usize) -> CircuitResult<Circuit> {
    check_params(dim, n, "qft_multiplier")?;
    let mut c = Circuit::new(dim, 3 * n);
    qft_rotations(&mut c, 2 * n, n)?;
    for i in 0..n {
        for j in 0..n {
            for m in 0..n {
                // a_i·b_j contributes la·lb·d^{2n-2-i-j} to the product;
                // Fourier digit p_{2n+m} has phase base d^{n-m}. Phases
                // that are integer turns are the identity and are skipped.
                let exponent = (n as i32) - 2 - (i as i32) - (j as i32) + (m as i32);
                if exponent >= 0 {
                    continue;
                }
                let scale = (dim as f64).powi(exponent);
                for la in 1..dim {
                    for lb in 1..dim {
                        let turns = (la * lb) as f64 * scale;
                        if turns.fract() == 0.0 {
                            continue;
                        }
                        c.push_controlled(
                            Gate::phase_ramp(dim, turns),
                            &[Control::new(i, la), Control::new(n + j, lb)],
                            &[2 * n + m],
                        )?;
                    }
                }
            }
        }
    }
    let mut rotations = Circuit::new(dim, 3 * n);
    qft_rotations(&mut rotations, 2 * n, n)?;
    c.extend(&rotations.inverse())?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_counts_match_the_documented_formula() {
        for (d, n) in [(2, 3), (3, 4), (5, 2)] {
            let c = qft(d, n).unwrap();
            assert_eq!(c.len(), n + n * (n - 1) / 2 + n / 2, "d={d} n={n}");
        }
    }

    #[test]
    fn qft_inverse_composes_to_identity_ops() {
        let mut c = qft(3, 3).unwrap();
        c.extend(&qft_inverse(3, 3).unwrap()).unwrap();
        // Structural check only here (the semantic identity check runs
        // against the exact backend in the workspace tests): every op of
        // the inverse mirrors one of the forward pass.
        assert_eq!(c.len(), 2 * qft(3, 3).unwrap().len());
    }

    #[test]
    fn generators_reject_degenerate_parameters() {
        assert!(qft(1, 3).is_err());
        assert!(qft(3, 0).is_err());
        assert!(qft_adder(3, 0).is_err());
        assert!(qft_multiplier(1, 2).is_err());
    }
}
