//! # qudit-algos
//!
//! A parameterized library of qudit algorithm circuits, built on the
//! workspace's circuit IR and executed through the `qudit-api` façade.
//! Every generator takes an arbitrary qudit dimension `d ≥ 2` and a size
//! parameter and returns a plain [`Circuit`](qudit_circuit::Circuit) — the
//! same IR the compiler
//! passes, both noise backends and the resource analyzer consume — so the
//! paper's qutrit-vs-qubit comparisons extend beyond the Toffoli
//! constructions to whole algorithms.
//!
//! ## Generators
//!
//! | Generator | Registers | Semantics |
//! |---|---|---|
//! | [`qft`] / [`qft_inverse`] | `n` digits | Fourier transform over `Z_{d^n}` |
//! | [`ripple_adder`] | carry + 2·`n` bits + carry-out | `b ← a + b (mod 2^n)` via the paper's intermediate-qutrit Toffoli carries |
//! | [`qft_adder`] | 2·`n` digits | Draper adder `b ← a + b (mod d^n)` in Fourier space |
//! | [`qft_multiplier`] | 3·`n` digits | `p ← p + a·b (mod d^n)` via doubly-controlled phase ramps |
//! | [`phase_estimation`] | `t` counting + 1 target | estimates an eigenphase of a supplied single-qudit unitary |
//! | [`ghz`] | `n` qudits | `(1/√d) Σ_j \|j…j⟩` |
//! | [`w_state`] | `n` qudits | `(1/√n) Σ_i \|0…1…0⟩` (the 1 at position `i`) |
//!
//! Golden resource counts for each generator are pinned by the workspace's
//! `algo_resources` test at two sizes per family; the README's algorithm
//! table is generated from the same numbers.
//!
//! ## Conventions
//!
//! Registers are big-endian: qudit 0 of a register holds the most
//! significant digit, so a register `[q0, q1]` over dimension `d` encodes
//! the value `q0·d + q1`. All generators validate their size parameters and
//! return [`CircuitError::IncompatibleCircuits`] for empty registers or
//! unsupported dimensions rather than panicking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arith;
mod catalog;
mod phase;
mod qft;
mod states;

pub use arith::{adder_input, ripple_adder};
pub use catalog::{catalog, AlgoCase};
pub use phase::phase_estimation;
pub use qft::{qft, qft_adder, qft_inverse, qft_multiplier};
pub use states::{ghz, w_state};

use qudit_circuit::{CircuitError, CircuitResult};

/// Shared parameter validation: dimension at least 2, register non-empty.
pub(crate) fn check_params(dim: usize, width: usize, what: &str) -> CircuitResult<()> {
    if dim < 2 {
        return Err(CircuitError::IncompatibleCircuits {
            reason: format!("{what} needs qudit dimension ≥ 2, got {dim}"),
        });
    }
    if width == 0 {
        return Err(CircuitError::IncompatibleCircuits {
            reason: format!("{what} needs at least one qudit"),
        });
    }
    Ok(())
}
