//! # qutrits
//!
//! A Rust reproduction of *"Asymptotic Improvements to Quantum Circuits via
//! Qutrits"* (Gokhale, Baker, Duckering, Brown, Brown, Chong — ISCA 2019).
//!
//! This facade crate re-exports the workspace's five crates:
//!
//! * [`qcore`] (`qudit-core`) — complex math, dense matrices, state vectors,
//!   gate matrices, random states.
//! * [`circuit`] (`qudit-circuit`) — the qudit circuit IR: gates, operations
//!   with per-control activation levels, moment scheduling, cost analysis,
//!   linear-space classical verification.
//! * [`sim`] (`qudit-sim`) — the dense state-vector simulator.
//! * [`noise`] (`qudit-noise`) — depolarizing and amplitude-damping channels,
//!   the paper's superconducting and trapped-ion noise models, and the
//!   quantum-trajectory fidelity simulator.
//! * [`toffoli`] (`qutrit-toffoli`) — the paper's contribution: the
//!   ancilla-free log-depth Generalized Toffoli via qutrits, its baselines,
//!   and the derived circuits (incrementer, Grover, quantum neuron).
//!
//! ## Example
//!
//! ```
//! use qutrits::circuit::Schedule;
//! use qutrits::toffoli::gen_toffoli::n_controlled_x;
//!
//! let circuit = n_controlled_x(15)?;
//! assert_eq!(circuit.width(), 16);          // no ancilla
//! assert_eq!(Schedule::asap(&circuit).depth(), 7); // logarithmic depth
//! # Ok::<(), qutrits::circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]

pub use qudit_circuit as circuit;
pub use qudit_core as qcore;
pub use qudit_noise as noise;
pub use qudit_sim as sim;
pub use qutrit_toffoli as toffoli;
