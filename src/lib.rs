//! # qutrits
//!
//! A Rust reproduction of *"Asymptotic Improvements to Quantum Circuits via
//! Qutrits"* (Gokhale, Baker, Duckering, Brown, Brown, Chong — ISCA 2019).
//!
//! **Start at [`api`]** (`qudit-api`): the workspace's public entry point.
//! It provides the builder-validated [`api::JobSpec`], the compile-caching
//! [`api::Executor`] with batch execution, and the JSON wire format; every
//! example and bench binary runs its simulations through it.
//!
//! The lower layers are re-exported for circuit construction and direct
//! engine work:
//!
//! * [`qcore`] (`qudit-core`) — complex math, dense matrices, state vectors,
//!   gate matrices, random states.
//! * [`circuit`] (`qudit-circuit`) — the qudit circuit IR: gates, operations
//!   with per-control activation levels, moment scheduling, cost analysis,
//!   linear-space classical verification, and the pass-based compiler.
//! * [`sim`] (`qudit-sim`) — the dense state-vector simulator.
//! * [`noise`] (`qudit-noise`) — depolarizing and amplitude-damping channels,
//!   the paper's superconducting and trapped-ion noise models, and the
//!   quantum-trajectory / exact density-matrix fidelity simulators.
//! * [`toffoli`] (`qutrit-toffoli`) — the paper's contribution: the
//!   ancilla-free log-depth Generalized Toffoli via qutrits, its baselines,
//!   and the derived circuits (incrementer, Grover, quantum neuron).
//! * [`algos`] (`qudit-algos`) — the parameterized algorithm library: QFT,
//!   ripple-carry and Draper adders, a multiplier, phase estimation and
//!   GHZ/W state preparation, all as plain circuits for any `d ≥ 2`.
//!
//! ## Example
//!
//! ```
//! use qutrits::api::{Executor, JobSpec};
//! use qutrits::noise::models;
//! use qutrits::toffoli::gen_toffoli::n_controlled_x;
//!
//! // Fidelity of the 3-control Generalized Toffoli under the SC model,
//! // through the façade: describe the job, run it, read the estimate.
//! let job = JobSpec::builder(n_controlled_x(3)?)
//!     .noise(models::sc())
//!     .trials(10)
//!     .build()?;
//! let estimate = Executor::new().run(&job)?.fidelity()?.clone();
//! assert!(estimate.mean > 0.9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use qudit_algos as algos;
pub use qudit_api as api;
pub use qudit_circuit as circuit;
pub use qudit_core as qcore;
pub use qudit_noise as noise;
pub use qudit_sim as sim;
pub use qutrit_toffoli as toffoli;
