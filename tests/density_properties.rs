//! Property-based tests for the density-matrix backend: under every noise
//! channel the paper uses, `ρ` must stay Hermitian, trace-1 and have a
//! non-negative diagonal (the observable slice of positivity), and unitary
//! conjugation must preserve purity.

use proptest::prelude::*;
use qudit_core::random_state;
use qudit_noise::{models, Channel, NoiseModel};
use qudit_sim::DensityMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f64 = 1e-9;

/// Every distinct (channel, dimension) pair the paper's models generate:
/// single- and two-qudit depolarizing plus the T1 idle damping channels.
fn all_channels(model: &NoiseModel, d: usize) -> Vec<(String, Channel, usize)> {
    let mut out = vec![
        (
            format!("{}-single-d{d}", model.name),
            model.single_qudit_gate_error(d).unwrap(),
            1,
        ),
        (
            format!("{}-two-d{d}", model.name),
            model.two_qudit_gate_error(d).unwrap(),
            2,
        ),
    ];
    for (label, long) in [("short", false), ("long", true)] {
        if let Some(idle) = model.idle_error(d, model.moment_duration(long)).unwrap() {
            out.push((format!("{}-idle-{label}-d{d}", model.name), idle, 1));
        }
    }
    out
}

/// A mixed (but physical) random density matrix: an unequal mixture of two
/// random pure states.
fn random_mixed(d: usize, n: usize, seed: u64) -> DensityMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = random_state(d, n, &mut rng).unwrap();
    let b = random_state(d, n, &mut rng).unwrap();
    DensityMatrix::from_mixture(&[(0.7, &a), (0.3, &b)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_channel_preserves_density_matrix_invariants(
        seed in 0u64..10_000,
        model_idx in 0usize..7,
    ) {
        let model = &models::all_models()[model_idx];
        for d in [2usize, 3] {
            for (label, channel, arity) in all_channels(model, d) {
                // A 3-qudit register, channel applied to a site that is not
                // aligned with the register edge.
                let n = 3;
                let qudits: Vec<usize> = (1..1 + arity).collect();
                let mut rho = random_mixed(d, n, seed);
                rho.apply_superoperator(&channel.superoperator(), &qudits);

                prop_assert!(
                    (rho.trace().re - 1.0).abs() < TOL,
                    "{label}: trace drifted to {}", rho.trace().re
                );
                prop_assert!(
                    rho.hermiticity_error() < TOL,
                    "{label}: hermiticity error {}", rho.hermiticity_error()
                );
                prop_assert!(
                    rho.min_population() > -TOL,
                    "{label}: negative population {}", rho.min_population()
                );
            }
        }
    }

    #[test]
    fn unitary_conjugation_preserves_purity_and_trace(
        seed in 0u64..10_000,
        target in 0usize..3,
    ) {
        let mut rho = random_mixed(3, 3, seed);
        let purity_before = rho.purity();
        rho.apply_unitary(&qudit_core::gates::qutrit::h3(), &[target]);
        rho.apply_unitary(&qudit_core::gates::qudit::shift(3), &[(target + 1) % 3]);
        prop_assert!((rho.purity() - purity_before).abs() < TOL);
        prop_assert!((rho.trace().re - 1.0).abs() < TOL);
        prop_assert!(rho.hermiticity_error() < TOL);
    }
}
