//! Differential harness for the topology-aware routing pass.
//!
//! Routing changes *where* every gate executes (a placement of logical
//! qudits onto hardware sites plus inserted qudit-SWAPs), never *what* the
//! circuit computes. Three properties pin the pass:
//!
//! 1. **Unitary preservation modulo the recorded permutations:** for any
//!    circuit and topology, embedding the input through the initial
//!    placement, running the routed circuit, and undoing the final mapping
//!    yields the same state the unrouted compilation produces — on the
//!    paper's constructions and on random circuits over `d ∈ {2, 3}` for
//!    every topology family (linear, ring, grid, heavy-hex).
//! 2. **Identity on routable circuits:** routing on an all-to-all topology
//!    — or on any topology under which the circuit is already
//!    nearest-neighbour — is an op-list identity: zero SWAPs, untouched
//!    operations, identity placement.
//! 3. **Accounting neutrality:** the exact density-matrix backend reports
//!    the same fidelity for routed and unrouted runs of the fig4 Toffoli
//!    (which routes SWAP-free on a 3-site line or ring) under **every**
//!    noise model of the paper, to ≤ 1e-9.

use proptest::prelude::*;
use qudit_api::{BackendKind, Executor, InputState, JobSpec};
use qudit_circuit::passes::{compile, compile_with_topology, PassLevel};
use qudit_circuit::{Circuit, Control, Gate, Operation, Topology};
use qudit_core::{random_state, StateVector};
use qudit_noise::models;
use qudit_sim::{reference, CompiledCircuit};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UNITARY_TOL: f64 = 1e-9;
const FIDELITY_TOL: f64 = 1e-9;

fn invert(map: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; map.len()];
    for (q, &site) in map.iter().enumerate() {
        inv[site] = q;
    }
    inv
}

/// The differential check: the routed compilation, conjugated by its own
/// recorded placement/final-mapping permutations, must act on states exactly
/// like the unrouted compilation at the same pass level.
fn assert_routing_preserves_unitary(
    circuit: &Circuit,
    topology: &Topology,
    level: PassLevel,
    state: &StateVector,
) {
    let routed_ir = compile_with_topology(circuit, level, Some(topology));
    let summary = routed_ir
        .routing()
        .expect("a topology-compiled IR records its routing summary")
        .clone();
    assert_eq!(summary.unrouted, 0, "every interaction must be routed");
    // Every multi-qudit op of the routed circuit acts on adjacent sites.
    for op in routed_ir.circuit().iter() {
        let qudits = op.qudits();
        for a in 0..qudits.len() {
            for b in (a + 1)..qudits.len() {
                assert!(
                    topology.is_adjacent(qudits[a], qudits[b]),
                    "routed op on non-adjacent sites {} and {} ({topology})",
                    qudits[a],
                    qudits[b]
                );
            }
        }
    }

    let embedded = state.permute_qudits(&summary.placement).unwrap();
    let routed_out = CompiledCircuit::compile_ir(&routed_ir).run(embedded);
    let unembedded = routed_out
        .permute_qudits(&invert(&summary.final_mapping))
        .unwrap();

    let unrouted_ir = compile(circuit, level);
    let want = CompiledCircuit::compile_ir(&unrouted_ir).run(state.clone());

    for (i, (a, b)) in unembedded
        .amplitudes()
        .iter()
        .zip(want.amplitudes())
        .enumerate()
    {
        assert!(
            a.approx_eq(*b, UNITARY_TOL),
            "amplitude {i} differs on {topology}: {a:?} vs {b:?}"
        );
    }
}

/// A random circuit mixing single-qudit, two-qudit and (optionally)
/// two-control operations across the full width — interactions land on
/// arbitrary qudit pairs, so any bounded-degree topology needs SWAPs.
fn random_circuit(dim: usize, width: usize, ops: usize, rng: &mut StdRng) -> Circuit {
    random_circuit_with(dim, width, ops, true, rng)
}

/// `high_arity = false` keeps every op at arity ≤ 2 — required when routing
/// *without* a lowering pass (the Ideal level) on a triangle-free topology
/// like heavy-hex, where a 3-qudit op has no clique of sites to land on.
fn random_circuit_with(
    dim: usize,
    width: usize,
    ops: usize,
    high_arity: bool,
    rng: &mut StdRng,
) -> Circuit {
    let mut circuit = Circuit::new(dim, width);
    for _ in 0..ops {
        let mut qudits: Vec<usize> = (0..width).collect();
        for i in (1..qudits.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            qudits.swap(i, j);
        }
        let gate = match rng.gen_range(0..5) {
            0 => Gate::increment(dim),
            1 => Gate::decrement(dim),
            2 => Gate::x(dim),
            3 => Gate::h(dim),
            _ => Gate::fourier(dim),
        };
        match rng.gen_range(0..4) {
            0 => circuit
                .push(Operation::new(gate, vec![], vec![qudits[0]]).unwrap())
                .unwrap(),
            // Two-control ops exercise the pipeline ordering: decomposition
            // lowers them to two-qudit blocks *before* routing sees them.
            1 if high_arity && width >= 3 => circuit
                .push_controlled(
                    gate,
                    &[
                        Control::new(qudits[0], rng.gen_range(0..dim)),
                        Control::new(qudits[1], rng.gen_range(0..dim)),
                    ],
                    &[qudits[2]],
                )
                .unwrap(),
            _ => circuit
                .push_controlled(
                    gate,
                    &[Control::new(qudits[0], rng.gen_range(0..dim))],
                    &[qudits[1]],
                )
                .unwrap(),
        };
    }
    circuit
}

/// Every topology family at a circuit-friendly small width.
fn topologies_for(width: usize) -> Vec<Topology> {
    let mut out = vec![
        Topology::linear(width).unwrap(),
        Topology::ring(width).unwrap(),
    ];
    match width {
        4 => out.push(Topology::grid(2, 2).unwrap()),
        6 => {
            out.push(Topology::grid(2, 3).unwrap());
            out.push(Topology::grid(3, 2).unwrap());
        }
        _ => {}
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random circuits over d ∈ {2, 3} on every small topology family:
    /// routed ∘ placement⁻¹ ≡ unrouted, at the physical level (routing
    /// after lowering) on random states.
    #[test]
    fn routed_random_circuits_match_unrouted(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(4..7);
        let circuit = random_circuit(dim, width, rng.gen_range(2..5), &mut rng);
        let state = random_state(dim, width, &mut rng).unwrap();
        for topology in topologies_for(width) {
            assert_routing_preserves_unitary(&circuit, &topology, PassLevel::Physical, &state);
        }
    }

    /// The heavy-hex family at its smallest cell count (12 sites), d = 2 so
    /// the differential replay stays fast in a debug run.
    #[test]
    fn routed_heavy_hex_circuits_match_unrouted(seed in 0u64..1_000_000) {
        let topology = Topology::heavy_hex(1).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit =
            random_circuit_with(2, topology.sites(), rng.gen_range(2..5), false, &mut rng);
        let state = random_state(2, topology.sites(), &mut rng).unwrap();
        assert_routing_preserves_unitary(&circuit, &topology, PassLevel::Ideal, &state);
    }

    /// The routing pass's SWAP primitive itself, pinned at d = 3: applying
    /// `Gate::swap(3)` to qudits (i, j) of a random state equals relabeling
    /// those qudits — on *any* state, not just basis states.
    #[test]
    fn qudit_swap_gate_relabels_qutrits(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..5);
        let i = rng.gen_range(0..width);
        let j = (i + rng.gen_range(1..width)) % width;
        let state = random_state(3, width, &mut rng).unwrap();

        let mut swapped = state.clone();
        let op = Operation::new(Gate::swap(3), vec![], vec![i, j]).unwrap();
        reference::apply_operation_naive(&mut swapped, &op);

        let mut transposition: Vec<usize> = (0..width).collect();
        transposition.swap(i, j);
        let relabeled = state.permute_qudits(&transposition).unwrap();
        for (a, b) in swapped.amplitudes().iter().zip(relabeled.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "{a:?} vs {b:?}");
        }
    }

    /// A circuit that is already nearest-neighbour on a line routes with
    /// zero SWAPs, an identity placement, and an untouched op list.
    #[test]
    fn already_routable_circuits_route_with_zero_swaps(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(3..7);
        let mut circuit = Circuit::new(dim, width);
        for _ in 0..rng.gen_range(2..6) {
            let a = rng.gen_range(0..width - 1);
            circuit
                .push_controlled(
                    Gate::x(dim),
                    &[Control::new(a, rng.gen_range(0..dim))],
                    &[a + 1],
                )
                .unwrap();
        }
        let topology = Topology::linear(width).unwrap();
        let routed = compile_with_topology(&circuit, PassLevel::Ideal, Some(&topology));
        let summary = routed.routing().unwrap();
        prop_assert!(summary.is_identity());
        prop_assert_eq!(summary.inserted_swaps, 0);
        prop_assert_eq!(routed.report().post.routed.unwrap().inserted_swaps, 0);
        let unrouted = compile(&circuit, PassLevel::Ideal);
        prop_assert_eq!(
            routed.circuit().operations(),
            unrouted.circuit().operations()
        );
    }
}

#[test]
fn routing_on_all_to_all_is_an_op_list_identity() {
    // Property 2 at the pipeline level: every level, two constructions and
    // a generic random circuit — all-to-all routing must not reorder,
    // rewrite or pad a single operation.
    let mut rng = StdRng::seed_from_u64(7);
    let circuits = vec![
        n_controlled_x(3).unwrap(),
        incrementer(5).unwrap(),
        random_circuit(3, 5, 4, &mut rng),
    ];
    for circuit in circuits {
        let topology = Topology::all_to_all(circuit.width()).unwrap();
        for level in [
            PassLevel::Ideal,
            PassLevel::Physical,
            PassLevel::PhysicalIdeal,
            PassLevel::NoisePreserving,
        ] {
            let routed = compile_with_topology(&circuit, level, Some(&topology));
            let unrouted = compile(&circuit, level);
            assert!(routed.routing().unwrap().is_identity());
            assert_eq!(
                routed.circuit().operations(),
                unrouted.circuit().operations(),
                "{level:?} op lists diverged"
            );
            assert_eq!(routed.report().post.routed.unwrap().inserted_swaps, 0);
        }
    }
}

#[test]
fn routed_paper_constructions_match_unrouted() {
    // The fixed acceptance circuits on every topology family their widths
    // fit (the smallest heavy-hex lattice has 12 sites — none of these
    // constructions reach it; the heavy-hex proptest above covers that
    // family).
    let mut rng = StdRng::seed_from_u64(2019);
    let cases: Vec<(&str, Circuit)> = vec![
        ("fig4-toffoli", n_controlled_x(2).unwrap()),
        ("n-controlled-x(3)", n_controlled_x(3).unwrap()),
        ("incrementer(5)", incrementer(5).unwrap()),
    ];
    for (name, circuit) in cases {
        let width = circuit.width();
        let all_ones = StateVector::from_basis_state(3, &vec![1usize; width]).unwrap();
        let random = random_state(3, width, &mut rng).unwrap();
        for topology in topologies_for(width) {
            for state in [&all_ones, &random] {
                assert_routing_preserves_unitary(&circuit, &topology, PassLevel::Physical, state);
            }
        }
        // Keep the name in the assertion path for debuggability.
        let _ = name;
    }
}

#[test]
fn star_smoke_on_a_d3_heavy_hex_lattice() {
    // One fixed qutrit case on the 12-site heavy-hex cell: a star over 5
    // qudits needs a degree-4 hub, which a degree-≤3 lattice cannot offer —
    // SWAPs are unavoidable. Compiled-vs-compiled replay (3^12 amplitudes
    // makes the naive oracle too slow for a debug run).
    let topology = Topology::heavy_hex(1).unwrap();
    let mut circuit = Circuit::new(3, topology.sites());
    for q in 1..5 {
        circuit
            .push_controlled(Gate::x(3), &[Control::on_one(0)], &[q])
            .unwrap();
    }
    let routed = compile_with_topology(&circuit, PassLevel::Ideal, Some(&topology));
    let summary = routed.routing().unwrap().clone();
    assert!(
        summary.inserted_swaps > 0,
        "a degree-4 hub cannot embed in a degree-3 lattice"
    );

    let mut digits = vec![0usize; topology.sites()];
    digits[0] = 1;
    let state = StateVector::from_basis_state(3, &digits).unwrap();
    let embedded = state.permute_qudits(&summary.placement).unwrap();
    let routed_out = CompiledCircuit::compile_ir(&routed)
        .run(embedded)
        .permute_qudits(&invert(&summary.final_mapping))
        .unwrap();
    let want = CompiledCircuit::compile_ir(&compile(&circuit, PassLevel::Ideal)).run(state);
    for (a, b) in routed_out.amplitudes().iter().zip(want.amplitudes()) {
        assert!(a.approx_eq(*b, UNITARY_TOL), "{a:?} vs {b:?}");
    }
}

#[test]
fn routed_fig4_exact_fidelity_matches_unrouted_for_every_model() {
    // Accounting neutrality: fig4's gates touch (0,1), (1,2), (0,1) —
    // nearest-neighbour on a 3-site line or ring — so routing must leave
    // the compiled circuit (and with it the exact-backend fidelity under
    // every noise model) untouched to well under 1e-9.
    let executor = Executor::new();
    for topology in [Topology::linear(3).unwrap(), Topology::ring(3).unwrap()] {
        for model in models::all_models() {
            let leg = |topology: Option<Topology>| {
                let mut builder = JobSpec::builder(n_controlled_x(2).unwrap())
                    .backend(BackendKind::DensityMatrix)
                    .noise(model.clone())
                    .trials(1)
                    .input(InputState::AllOnes);
                if let Some(t) = topology {
                    builder = builder.topology(t);
                }
                executor.run(&builder.build().unwrap()).unwrap()
            };
            let unrouted = leg(None).fidelity().unwrap().mean;
            let routed = leg(Some(topology.clone())).fidelity().unwrap().mean;
            assert!(
                (routed - unrouted).abs() <= FIDELITY_TOL,
                "{topology}/{}: routed {routed:.12} vs unrouted {unrouted:.12}",
                model.name
            );
        }
    }
}

#[test]
fn genuinely_routed_noisy_job_charges_the_inserted_swaps() {
    // A star interaction graph cannot embed in a line: routing inserts
    // SWAPs, and the exact backend must charge their error sites — the
    // routed fidelity is strictly below the all-to-all fidelity.
    let mut circuit = Circuit::new(3, 4);
    for q in 1..4 {
        circuit
            .push_controlled(Gate::x(3), &[Control::on_one(0)], &[q])
            .unwrap();
    }
    let executor = Executor::new();
    let leg = |topology: Option<Topology>| {
        let mut builder = JobSpec::builder(circuit.clone())
            .backend(BackendKind::DensityMatrix)
            .noise(models::sc_t1_gates())
            .trials(1)
            .input(InputState::AllOnes);
        if let Some(t) = topology {
            builder = builder.topology(t);
        }
        executor.run(&builder.build().unwrap()).unwrap()
    };
    let unrouted = leg(None);
    let routed = leg(Some(Topology::linear(4).unwrap()));
    let swaps = routed.resources.routed.unwrap().inserted_swaps;
    assert!(swaps > 0, "the star circuit must need SWAPs on a line");
    assert!(
        routed.fidelity().unwrap().mean < unrouted.fidelity().unwrap().mean,
        "inserted SWAPs must cost fidelity: routed {} vs unrouted {}",
        routed.fidelity().unwrap().mean,
        unrouted.fidelity().unwrap().mean
    );
}

#[test]
fn relabeling_only_routing_still_records_frames() {
    // incrementer(4) embeds in a 2x2 grid with zero SWAPs but a
    // non-identity placement: routing rewrites the op list (relabeling
    // qudits onto sites) without changing its length. The rewrite clears
    // the frame partition, and the fixpoint loop must run the follow-up
    // round that re-derives it — the noise backends panic on a Physical
    // IR without frames. Regression test for exactly that panic.
    let circuit = incrementer(4).unwrap();
    let topology = Topology::grid(2, 2).unwrap();
    let ir = compile_with_topology(&circuit, PassLevel::Physical, Some(&topology));
    let summary = ir.routing().expect("routing summary");
    assert_eq!(
        summary.inserted_swaps, 0,
        "incrementer(4) embeds in the grid"
    );
    assert!(
        !summary.is_identity(),
        "the embedding permutes the register"
    );
    assert!(
        ir.frames().is_some(),
        "a relabeled Physical IR must still carry its frame partition"
    );

    // And the full noisy path the panic surfaced on: an exact-backend job
    // routed for the grid runs and matches the unrouted fidelity (zero
    // SWAPs means no extra error sites).
    let executor = Executor::new();
    let leg = |topology: Option<Topology>| {
        let mut builder = JobSpec::builder(circuit.clone())
            .backend(BackendKind::DensityMatrix)
            .noise(models::sc_t1_gates())
            .trials(1)
            .input(InputState::AllOnes);
        if let Some(t) = topology {
            builder = builder.topology(t);
        }
        executor.run(&builder.build().unwrap()).unwrap()
    };
    let unrouted = leg(None).fidelity().unwrap().mean;
    let routed = leg(Some(topology)).fidelity().unwrap().mean;
    assert!(
        (routed - unrouted).abs() <= FIDELITY_TOL,
        "zero-SWAP routing must not change the fidelity: {routed:.12} vs {unrouted:.12}"
    );
}
