//! Differential harness for the physical Di & Wei lowering.
//!
//! The `DecompositionPass` changes *how* every ≥3-qudit operation is
//! executed (a real 6 two-qudit + 7 single-qudit block in the IR instead of
//! synthetic per-arity error sites in the noise backends). Two properties
//! pin the cutover:
//!
//! 1. **Unitary preservation:** the lowered circuit's unitary equals the
//!    reference oracle's (the retained naive engine replaying the *raw*
//!    circuit), on basis states and random states, for the paper's
//!    constructions and for random multiply-controlled operations over
//!    `d ∈ {2, 3}`.
//! 2. **Accounting equivalence:** the exact density-matrix backend's
//!    fidelity under the lowered circuit (uniform per-gate errors, frame
//!    idle durations measured from the lowered schedule) matches the legacy
//!    `GateExpansion::DiWei` virtual accounting to ≤ 1e-9 for **every**
//!    noise model of the paper on all three construction families. This is
//!    not a statistical bound — the depolarizing channels are Weyl twirls
//!    (replace channels), which commute, so the two accountings are equal
//!    as superoperators and the tests see only floating-point noise.

use proptest::prelude::*;
use qudit_circuit::passes::{compile, PassLevel};
use qudit_circuit::{Circuit, Control, Gate};
use qudit_core::{random_state, StateVector};
use qudit_noise::{models, DensityNoiseSimulator, GateExpansion, InputState, TrajectoryConfig};
use qudit_sim::{reference, CompiledCircuit};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UNITARY_TOL: f64 = 1e-9;
const ACCOUNTING_TOL: f64 = 1e-9;

fn fig4_toffoli() -> Circuit {
    n_controlled_x(2).unwrap()
}

/// Replays the raw circuit through the naive reference oracle and the
/// lowered circuit through the compiled kernels; asserts equal output
/// amplitudes.
fn assert_lowering_preserves_unitary(circuit: &Circuit, state: StateVector) {
    let ir = compile(circuit, PassLevel::Physical);
    assert!(
        ir.circuit().iter().all(|op| op.arity() <= 2),
        "physical lowering must reach arity ≤ 2"
    );
    let fast = CompiledCircuit::compile_ir(&ir).run(state.clone());
    let mut naive = state;
    for op in circuit.iter() {
        reference::apply_operation_naive(&mut naive, op);
    }
    for (i, (a, b)) in fast.amplitudes().iter().zip(naive.amplitudes()).enumerate() {
        assert!(
            a.approx_eq(*b, UNITARY_TOL),
            "amplitude {i} differs: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn lowered_fig4_toffoli_matches_oracle_on_all_binary_inputs() {
    let c = fig4_toffoli();
    for value in 0..(1usize << 3) {
        let digits: Vec<usize> = (0..3).map(|i| (value >> i) & 1).collect();
        let state = StateVector::from_basis_state(3, &digits).unwrap();
        assert_lowering_preserves_unitary(&c, state);
    }
}

#[test]
fn lowered_incrementer_8_matches_oracle() {
    // Width 8 (3^8 amplitudes): basis spot checks plus random states cover
    // the full block structure including |2⟩-controlled internal nodes.
    let c = incrementer(8).unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    for value in [0usize, 1, 37, 127, 128, 200, 255] {
        let digits: Vec<usize> = (0..8).map(|i| (value >> i) & 1).collect();
        assert_lowering_preserves_unitary(&c, StateVector::from_basis_state(3, &digits).unwrap());
    }
    for _ in 0..3 {
        assert_lowering_preserves_unitary(&c, random_state(3, 8, &mut rng).unwrap());
    }
}

#[test]
fn lowered_n_controlled_x_family_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(42);
    for n_controls in [3usize, 4, 5, 6] {
        let c = n_controlled_x(n_controls).unwrap();
        // The all-ones input exercises every tree level; random states
        // exercise the full Hilbert space including |2⟩ components the
        // binary functional tests never reach.
        let all_ones = StateVector::from_basis_state(3, &vec![1; n_controls + 1]).unwrap();
        assert_lowering_preserves_unitary(&c, all_ones);
        assert_lowering_preserves_unitary(&c, random_state(3, n_controls + 1, &mut rng).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random multiply-controlled operations over d ∈ {2, 3}: the lowered
    /// unitary equals the reference oracle on random states.
    #[test]
    fn lowered_random_controlled_ops_match_oracle(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(3..5);
        let mut circuit = Circuit::new(dim, width);
        let ops = rng.gen_range(1..4);
        for _ in 0..ops {
            // Pick 3 distinct qudits: two controls + one target.
            let mut qudits: Vec<usize> = (0..width).collect();
            for i in (1..qudits.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                qudits.swap(i, j);
            }
            let gate = match rng.gen_range(0..5) {
                0 => Gate::increment(dim),
                1 => Gate::decrement(dim),
                2 => Gate::x(dim),
                3 => Gate::h(dim),
                _ => Gate::fourier(dim),
            };
            let controls = vec![
                Control::new(qudits[0], rng.gen_range(0..dim)),
                Control::new(qudits[1], rng.gen_range(0..dim)),
            ];
            circuit
                .push_controlled(gate, &controls, &[qudits[2]])
                .unwrap();
        }
        let state = random_state(dim, width, &mut rng).unwrap();

        let ir = compile(&circuit, PassLevel::Physical);
        prop_assert!(ir.circuit().iter().all(|op| op.arity() <= 2));
        let fast = CompiledCircuit::compile_ir(&ir).run(state.clone());
        let mut naive = state;
        for op in circuit.iter() {
            reference::apply_operation_naive(&mut naive, op);
        }
        for (i, (a, b)) in fast.amplitudes().iter().zip(naive.amplitudes()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, UNITARY_TOL),
                "amplitude {i}: {a:?} vs {b:?}"
            );
        }
    }
}

/// The three construction families of the differential acceptance case, at
/// widths the exact backend handles comfortably in a debug test run.
fn diff_cases() -> Vec<(&'static str, Circuit)> {
    // Widths are kept ≤ 5 so the superoperator evolutions stay fast in a
    // debug test run; the lowering itself is identical at every width and
    // the unitary oracle suite above covers the larger instances.
    vec![
        ("fig4-toffoli", fig4_toffoli()),
        ("incrementer(5)", incrementer(5).unwrap()),
        ("n-controlled-x(3)", n_controlled_x(3).unwrap()),
    ]
}

#[test]
fn physical_lowering_matches_legacy_diwei_accounting_for_every_model() {
    // The acceptance case: exact-backend fidelity under the lowered
    // circuit vs the legacy virtual accounting, ≤ 1e-9, on all 7 noise
    // models × 3 constructions, all-|1⟩ input.
    for (name, circuit) in diff_cases() {
        for model in models::all_models() {
            let legacy = DensityNoiseSimulator::with_virtual_expansion(
                &circuit,
                &model,
                GateExpansion::DiWei,
            )
            .unwrap();
            let physical = DensityNoiseSimulator::new(&circuit, &model).unwrap();
            let input = StateVector::from_basis_state(3, &vec![1usize; circuit.width()]).unwrap();
            let f_legacy = legacy.exact_fidelity(&input);
            let f_physical = physical.exact_fidelity(&input);
            assert!(
                (f_legacy - f_physical).abs() <= ACCOUNTING_TOL,
                "{name}/{}: physical {f_physical:.12} vs legacy {f_legacy:.12} \
                 (diff {:.3e})",
                model.name,
                (f_legacy - f_physical).abs()
            );
        }
    }
}

#[test]
fn physical_lowering_matches_legacy_diwei_on_random_inputs() {
    // Random superposition inputs reach the |2⟩ components and interference
    // terms the all-ones case cannot; one representative model per family.
    let config = TrajectoryConfig {
        trials: 1,
        seed: 23,
        expansion: GateExpansion::DiWei,
        input: InputState::RandomQubitSubspace,
    };
    for (name, circuit) in diff_cases() {
        for model in [models::sc_t1_gates(), models::dressed_qutrit()] {
            let legacy = DensityNoiseSimulator::with_virtual_expansion(
                &circuit,
                &model,
                GateExpansion::DiWei,
            )
            .unwrap();
            let physical = DensityNoiseSimulator::new(&circuit, &model).unwrap();
            let f_legacy = legacy.run(&config).unwrap().mean;
            let f_physical = physical.run(&config).unwrap().mean;
            assert!(
                (f_legacy - f_physical).abs() <= ACCOUNTING_TOL,
                "{name}/{}: physical {f_physical:.12} vs legacy {f_legacy:.12}",
                model.name
            );
        }
    }
}

#[test]
fn trajectory_physical_stays_within_crossval_bounds() {
    // The trajectory engine on the lowered program must still converge to
    // the (lowered) exact value: the statistical gate that CI also runs at
    // larger sizes through `bench --bin crossval`.
    let circuit = n_controlled_x(3).unwrap();
    let config = TrajectoryConfig {
        trials: 300,
        seed: 2019,
        expansion: GateExpansion::DiWei,
        input: InputState::AllOnes,
    };
    let cv = qudit_noise::cross_validate(&circuit, &models::sc_t1_gates(), &config, 3.0).unwrap();
    assert!(
        cv.within_bounds(),
        "trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance
    );
}
