//! Differential harness for the physical Di & Wei lowering.
//!
//! The `DecompositionPass` changes *how* every ≥3-qudit operation is
//! executed (a real 6 two-qudit + 7 single-qudit block in the IR instead of
//! synthetic per-arity error sites in the noise backends). Two properties
//! pin the cutover:
//!
//! 1. **Unitary preservation:** the lowered circuit's unitary equals the
//!    reference oracle's (the retained naive engine replaying the *raw*
//!    circuit), on basis states and random states, for the paper's
//!    constructions and for random multiply-controlled operations over
//!    `d ∈ {2, 3}`.
//! 2. **Accounting equivalence:** the exact density-matrix backend's
//!    fidelity under the lowered circuit (uniform per-gate errors, frame
//!    idle durations measured from the lowered schedule) matches the
//!    paper's virtual Di & Wei accounting to ≤ 1e-9 for **every** noise
//!    model of the paper on all three construction families. The baseline
//!    is [`virtual_diwei_fidelity`], a test-local oracle built from public
//!    channel/superoperator primitives only (the production shim that used
//!    to provide it — `GateExpansion` — is deleted): per ASAP moment, the
//!    operation unitaries, then 6 synthetic two-qudit + 7 single-qudit
//!    error charges per ≥3-qudit operation, then per-qudit idle damping for
//!    the moment's expanded duration. This is not a statistical bound — the
//!    depolarizing channels are Weyl twirls (replace channels), which
//!    commute, so the two accountings are equal as superoperators and the
//!    tests see only floating-point noise.

use proptest::prelude::*;
use qudit_circuit::passes::{compile, PassLevel};
use qudit_circuit::{Circuit, Control, Gate, MomentDuration, Schedule};
use qudit_core::{random_qubit_subspace_state, random_state, StateVector};
use qudit_noise::{models, DensityNoiseSimulator, InputState, NoiseModel, TrajectoryConfig};
use qudit_sim::{reference, CompiledCircuit, DensityMatrix};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UNITARY_TOL: f64 = 1e-9;
const ACCOUNTING_TOL: f64 = 1e-9;

fn fig4_toffoli() -> Circuit {
    n_controlled_x(2).unwrap()
}

/// Replays the raw circuit through the naive reference oracle and the
/// lowered circuit through the compiled kernels; asserts equal output
/// amplitudes.
fn assert_lowering_preserves_unitary(circuit: &Circuit, state: StateVector) {
    let ir = compile(circuit, PassLevel::Physical);
    assert!(
        ir.circuit().iter().all(|op| op.arity() <= 2),
        "physical lowering must reach arity ≤ 2"
    );
    let fast = CompiledCircuit::compile_ir(&ir).run(state.clone());
    let mut naive = state;
    for op in circuit.iter() {
        reference::apply_operation_naive(&mut naive, op);
    }
    for (i, (a, b)) in fast.amplitudes().iter().zip(naive.amplitudes()).enumerate() {
        assert!(
            a.approx_eq(*b, UNITARY_TOL),
            "amplitude {i} differs: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn lowered_fig4_toffoli_matches_oracle_on_all_binary_inputs() {
    let c = fig4_toffoli();
    for value in 0..(1usize << 3) {
        let digits: Vec<usize> = (0..3).map(|i| (value >> i) & 1).collect();
        let state = StateVector::from_basis_state(3, &digits).unwrap();
        assert_lowering_preserves_unitary(&c, state);
    }
}

#[test]
fn lowered_incrementer_8_matches_oracle() {
    // Width 8 (3^8 amplitudes): basis spot checks plus random states cover
    // the full block structure including |2⟩-controlled internal nodes.
    let c = incrementer(8).unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    for value in [0usize, 1, 37, 127, 128, 200, 255] {
        let digits: Vec<usize> = (0..8).map(|i| (value >> i) & 1).collect();
        assert_lowering_preserves_unitary(&c, StateVector::from_basis_state(3, &digits).unwrap());
    }
    for _ in 0..3 {
        assert_lowering_preserves_unitary(&c, random_state(3, 8, &mut rng).unwrap());
    }
}

#[test]
fn lowered_n_controlled_x_family_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(42);
    for n_controls in [3usize, 4, 5, 6] {
        let c = n_controlled_x(n_controls).unwrap();
        // The all-ones input exercises every tree level; random states
        // exercise the full Hilbert space including |2⟩ components the
        // binary functional tests never reach.
        let all_ones = StateVector::from_basis_state(3, &vec![1; n_controls + 1]).unwrap();
        assert_lowering_preserves_unitary(&c, all_ones);
        assert_lowering_preserves_unitary(&c, random_state(3, n_controls + 1, &mut rng).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random multiply-controlled operations over d ∈ {2, 3}: the lowered
    /// unitary equals the reference oracle on random states.
    #[test]
    fn lowered_random_controlled_ops_match_oracle(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(3..5);
        let mut circuit = Circuit::new(dim, width);
        let ops = rng.gen_range(1..4);
        for _ in 0..ops {
            // Pick 3 distinct qudits: two controls + one target.
            let mut qudits: Vec<usize> = (0..width).collect();
            for i in (1..qudits.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                qudits.swap(i, j);
            }
            let gate = match rng.gen_range(0..5) {
                0 => Gate::increment(dim),
                1 => Gate::decrement(dim),
                2 => Gate::x(dim),
                3 => Gate::h(dim),
                _ => Gate::fourier(dim),
            };
            let controls = vec![
                Control::new(qudits[0], rng.gen_range(0..dim)),
                Control::new(qudits[1], rng.gen_range(0..dim)),
            ];
            circuit
                .push_controlled(gate, &controls, &[qudits[2]])
                .unwrap();
        }
        let state = random_state(dim, width, &mut rng).unwrap();

        let ir = compile(&circuit, PassLevel::Physical);
        prop_assert!(ir.circuit().iter().all(|op| op.arity() <= 2));
        let fast = CompiledCircuit::compile_ir(&ir).run(state.clone());
        let mut naive = state;
        for op in circuit.iter() {
            reference::apply_operation_naive(&mut naive, op);
        }
        for (i, (a, b)) in fast.amplitudes().iter().zip(naive.amplitudes()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, UNITARY_TOL),
                "amplitude {i}: {a:?} vs {b:?}"
            );
        }
    }
}

/// The three construction families of the differential acceptance case, at
/// widths the exact backend handles comfortably in a debug test run.
fn diff_cases() -> Vec<(&'static str, Circuit)> {
    // Widths are kept ≤ 5 so the superoperator evolutions stay fast in a
    // debug test run; the lowering itself is identical at every width and
    // the unitary oracle suite above covers the larger instances.
    vec![
        ("fig4-toffoli", fig4_toffoli()),
        ("incrementer(5)", incrementer(5).unwrap()),
        ("n-controlled-x(3)", n_controlled_x(3).unwrap()),
    ]
}

/// The paper's published virtual Di & Wei accounting, reimplemented from
/// public primitives as an independent oracle: per ASAP moment of the *raw*
/// circuit, apply the operation unitaries, then per operation the synthetic
/// gate-error charges (its own qudits for arity ≤ 2; for arity ≥ 3, six
/// two-qudit depolarizing errors cycling over the operation's qudit pairs
/// plus seven single-qudit errors cycling over its qudits), then per-qudit
/// idle damping for the moment's expanded duration (6 two-qudit gate times
/// for a ≥3-qudit moment). Returns `⟨ψ_ideal|ρ|ψ_ideal⟩` with the ideal
/// output produced by the retained naive reference engine.
fn virtual_diwei_fidelity(circuit: &Circuit, model: &NoiseModel, input: &StateVector) -> f64 {
    let d = circuit.dim();
    let n = circuit.width();
    let schedule = Schedule::asap(circuit);
    let single = model.single_qudit_gate_error(d).unwrap().superoperator();
    let two = model.two_qudit_gate_error(d).unwrap().superoperator();

    let mut rho = DensityMatrix::from_pure(input);
    for moment in schedule.moments() {
        for &i in &moment.op_indices {
            rho.apply_operation(&circuit.operations()[i]);
        }
        for &i in &moment.op_indices {
            let op = &circuit.operations()[i];
            let qudits = op.qudits();
            match op.arity() {
                0 => {}
                1 => rho.apply_superoperator(&single, &qudits),
                2 => rho.apply_superoperator(&two, &qudits),
                _ => {
                    let mut pairs = Vec::new();
                    for a in 0..qudits.len() {
                        for b in (a + 1)..qudits.len() {
                            pairs.push([qudits[a], qudits[b]]);
                        }
                    }
                    for k in 0..6 {
                        rho.apply_superoperator(&two, &pairs[k % pairs.len()]);
                    }
                    for k in 0..7 {
                        rho.apply_superoperator(&single, &[qudits[k % qudits.len()]]);
                    }
                }
            }
        }
        let dt = match moment.duration(true) {
            MomentDuration::SingleQudit => model.gate_time_1q,
            MomentDuration::MultiQudit => model.gate_time_2q,
            MomentDuration::ExpandedMultiQudit => 6.0 * model.gate_time_2q,
        };
        if let Some(idle) = model.idle_error(d, dt).unwrap() {
            let idle = idle.superoperator();
            for q in 0..n {
                rho.apply_superoperator(&idle, &[q]);
            }
        }
    }
    rho.renormalize();

    let mut ideal = input.clone();
    for op in circuit.iter() {
        reference::apply_operation_naive(&mut ideal, op);
    }
    rho.fidelity_with_pure(&ideal)
}

#[test]
fn physical_lowering_matches_virtual_diwei_accounting_for_every_model() {
    // The acceptance case: exact-backend fidelity under the lowered
    // circuit vs the independent virtual-accounting oracle, ≤ 1e-9, on all
    // 7 noise models × 3 constructions, all-|1⟩ input.
    for (name, circuit) in diff_cases() {
        for model in models::all_models() {
            let physical = DensityNoiseSimulator::new(&circuit, &model).unwrap();
            let input = StateVector::from_basis_state(3, &vec![1usize; circuit.width()]).unwrap();
            let f_virtual = virtual_diwei_fidelity(&circuit, &model, &input);
            let f_physical = physical.exact_fidelity(&input);
            assert!(
                (f_virtual - f_physical).abs() <= ACCOUNTING_TOL,
                "{name}/{}: physical {f_physical:.12} vs virtual {f_virtual:.12} \
                 (diff {:.3e})",
                model.name,
                (f_virtual - f_physical).abs()
            );
        }
    }
}

#[test]
fn physical_lowering_matches_virtual_diwei_on_random_inputs() {
    // Random superposition inputs reach the |2⟩ components and interference
    // terms the all-ones case cannot; one representative model per family.
    // The input draw mirrors the production simulators' seeding, so the
    // oracle sees exactly the state `run(&config)` evolves.
    let seed = 23u64;
    let config = TrajectoryConfig {
        trials: 1,
        seed,
        input: InputState::RandomQubitSubspace,
        ..TrajectoryConfig::default()
    };
    for (name, circuit) in diff_cases() {
        for model in [models::sc_t1_gates(), models::dressed_qutrit()] {
            let mut rng = StdRng::seed_from_u64(seed);
            let input = random_qubit_subspace_state(3, circuit.width(), &mut rng).unwrap();
            let f_virtual = virtual_diwei_fidelity(&circuit, &model, &input);
            let physical = DensityNoiseSimulator::new(&circuit, &model).unwrap();
            let f_physical = physical.run(&config).unwrap().mean;
            assert!(
                (f_virtual - f_physical).abs() <= ACCOUNTING_TOL,
                "{name}/{}: physical {f_physical:.12} vs virtual {f_virtual:.12}",
                model.name
            );
        }
    }
}

#[test]
fn trajectory_physical_stays_within_crossval_bounds() {
    // The trajectory engine on the lowered program must still converge to
    // the (lowered) exact value: the statistical gate that CI also runs at
    // larger sizes through `bench --bin crossval`.
    let circuit = n_controlled_x(3).unwrap();
    let config = TrajectoryConfig {
        trials: 300,
        seed: 2019,
        input: InputState::AllOnes,
        ..TrajectoryConfig::default()
    };
    let cv = qudit_noise::cross_validate(&circuit, &models::sc_t1_gates(), &config, 3.0).unwrap();
    assert!(
        cv.within_bounds(),
        "trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance
    );
}
