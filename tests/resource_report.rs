//! Golden tests: the `ResourceReport` analyzer must reproduce the resource
//! numbers the paper reports for its constructions — the depth and
//! two-qudit-count columns behind Tables 2–3's simulated circuits and the
//! Figure 9/10 series.
//!
//! The values are pinned exactly (they are structural, not statistical):
//! a drift in the scheduler, the Di & Wei expansion or the constructions
//! themselves fails this suite.

use qudit_circuit::passes::{compile, PassLevel};
use qudit_circuit::{KernelClass, ResourceReport};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;

#[test]
fn fig4_toffoli_resources_match_the_paper() {
    // Tables 2–3's reference fidelity circuit: the Figure 4 Toffoli —
    // three two-qutrit gates, depth 3, no single-qudit gates, no ancilla.
    let report = ResourceReport::measure(&n_controlled_x(2).unwrap());
    assert_eq!(report.total_ops(), 3);
    assert_eq!(report.two_qudit_gates(), 3);
    assert_eq!(report.physical.one_qudit_gates, 0);
    assert_eq!(report.depth(), 3);
    assert_eq!(report.logical_depth(), 3);
    // All three gates are classical permutations: the cheap kernel path.
    assert_eq!(report.kernels.permutation, 3);
    assert_eq!(report.kernels.dense, 0);
}

#[test]
fn n_controlled_x_15_resources_match_the_paper() {
    // Figure 5's binary tree over 15 controls: 7 compute + 1 central +
    // 7 uncompute operations; all 14 tree ops are three-qutrit gates.
    let report = ResourceReport::measure(&n_controlled_x(15).unwrap());
    assert_eq!(report.total_ops(), 15);
    assert_eq!(report.logical_depth(), 7, "2·log2(16) - 1 tree levels");
    // Di & Wei: 14 three-qutrit ops × 6 + the central two-qutrit gate.
    assert_eq!(report.two_qudit_gates(), 14 * 6 + 1);
    // Physical depth: 6 tree moments × 6 + the central moment.
    assert_eq!(report.depth(), 6 * 6 + 1);
    // The paper's ~6N two-qudit model (Figure 10) at N = 15.
    let model = 6.0 * 15.0;
    let measured = report.two_qudit_gates() as f64;
    assert!(
        (measured - model).abs() / model < 0.1,
        "measured {measured} vs ~6N model {model}"
    );
}

#[test]
fn n_controlled_x_depth_column_is_logarithmic() {
    // The Figure 9 depth column: doubling the controls adds a constant
    // 12 physical layers (one tree level of Di & Wei-expanded moments on
    // each side).
    let depths: Vec<usize> = [7usize, 15, 31, 63]
        .iter()
        .map(|&n| ResourceReport::measure(&n_controlled_x(n).unwrap()).depth())
        .collect();
    assert_eq!(depths, vec![25, 37, 49, 61]);
}

#[test]
fn incrementer_8_resources_are_pinned() {
    // The Section 5.3 ancilla-free incrementer at 8 bits. Structural
    // goldens for our construction: 28 logical ops, 46 physical two-qudit
    // gates, physical depth 39 (log²-depth scaling).
    let report = ResourceReport::measure(&incrementer(8).unwrap());
    assert_eq!(report.total_ops(), 28);
    assert_eq!(report.two_qudit_gates(), 46);
    assert_eq!(report.depth(), 39);
    // Every gate in the incrementer is classical.
    assert_eq!(
        report.kernels.permutation,
        report.total_ops(),
        "incrementer must be all-permutation: {:?}",
        report.kernels
    );
}

#[test]
fn lowered_n_controlled_x_15_reproduces_the_inferred_goldens() {
    // The cutover pin: the *measured* resources of the physically lowered
    // circuit must equal what `Moment::duration(true)` / the Di & Wei cost
    // weights have always inferred — 85 two-qudit gates and physical depth
    // 37 for nCX(15) (14 tree ops × 6 + the central gate; 6 tree moments
    // × 6 layers + 1).
    let circuit = n_controlled_x(15).unwrap();
    let ir = compile(&circuit, PassLevel::Physical);
    let lowered = ir.circuit();
    assert!(lowered.iter().all(|op| op.arity() <= 2));
    assert_eq!(lowered.iter().filter(|op| op.arity() == 2).count(), 85);
    assert_eq!(lowered.iter().filter(|op| op.arity() == 1).count(), 14 * 7);
    assert_eq!(ir.frames().unwrap().physical_depth(), 37);

    // The measured report and the inferred report agree column for column.
    let measured = ResourceReport::measure_physical(&circuit);
    let inferred = ResourceReport::measure(&circuit);
    assert_eq!(measured.two_qudit_gates(), inferred.two_qudit_gates());
    assert_eq!(measured.depth(), inferred.depth());
    assert_eq!(
        measured.physical.one_qudit_gates,
        inferred.physical.one_qudit_gates
    );
    assert_eq!(measured.total_ops(), 15, "logical op count is unchanged");
}

#[test]
fn lowered_incrementer_8_reproduces_the_inferred_goldens() {
    // incrementer(8): 46 physical two-qudit gates, physical depth 39 —
    // measured on the lowered circuit, equal to the inferred values.
    let circuit = incrementer(8).unwrap();
    let ir = compile(&circuit, PassLevel::Physical);
    assert_eq!(ir.circuit().iter().filter(|op| op.arity() == 2).count(), 46);
    assert_eq!(ir.frames().unwrap().physical_depth(), 39);

    let measured = ResourceReport::measure_physical(&circuit);
    assert_eq!(measured.two_qudit_gates(), 46);
    assert_eq!(measured.depth(), 39);
    assert_eq!(measured.total_ops(), 28);
    let inferred = ResourceReport::measure(&circuit);
    assert_eq!(measured.two_qudit_gates(), inferred.two_qudit_gates());
    assert_eq!(measured.depth(), inferred.depth());
    assert_eq!(
        measured.physical.one_qudit_gates,
        inferred.physical.one_qudit_gates
    );
}

#[test]
fn lowered_depth_column_matches_the_inferred_logarithmic_series() {
    // The Figure 9 depth column, measured on real lowered circuits.
    let depths: Vec<usize> = [7usize, 15, 31]
        .iter()
        .map(|&n| ResourceReport::measure_physical(&n_controlled_x(n).unwrap()).depth())
        .collect();
    assert_eq!(depths, vec![25, 37, 49]);
}

#[test]
fn arity_four_inferred_and_measured_columns_diverge_as_documented() {
    // Lowering at high arity: the flat Di & Wei weights charge every
    // >=3-arity op as one three-qutrit expansion (6 two-qudit gates), but
    // recursively lowering a 4-arity op (3 controls + a target) really
    // emits 14 two-qudit gates. `measure` reports the flat inference and
    // `measure_physical` the faithful physical numbers — both sides are
    // pinned so neither silently drifts toward the other, and the routed
    // column starts out absent on an unrouted report.
    use qudit_circuit::{Circuit, Control, Gate};
    let mut circuit = Circuit::new(3, 4);
    circuit
        .push_controlled(
            Gate::increment(3),
            &[Control::on_one(0), Control::on_one(1), Control::on_one(2)],
            &[3],
        )
        .unwrap();

    let inferred = ResourceReport::measure(&circuit);
    assert_eq!(
        inferred.two_qudit_gates(),
        6,
        "flat model: one 6-gate expansion"
    );

    let measured = ResourceReport::measure_physical(&circuit);
    assert_eq!(
        measured.two_qudit_gates(),
        14,
        "recursion: 2 arity-3 commutator factors x 6 + 2 direct two-qudit ops"
    );
    assert!(measured.two_qudit_gates() > inferred.two_qudit_gates());
    assert!(measured.routed.is_none() && inferred.routed.is_none());
}

#[test]
fn physical_ideal_level_shrinks_lowered_circuits() {
    // Optimization across decomposition boundaries: identity padding and
    // det-1 phase gates vanish, diagonal-commutation cancellation fires.
    let circuit = n_controlled_x(15).unwrap();
    let physical = compile(&circuit, PassLevel::Physical);
    let optimized = compile(&circuit, PassLevel::PhysicalIdeal);
    assert!(
        optimized.circuit().len() < physical.circuit().len(),
        "{} -> {} ops",
        physical.circuit().len(),
        optimized.circuit().len()
    );
    assert!(optimized.report().post.depth() < physical.report().post.depth());
}

#[test]
fn kernel_histogram_totals_match_op_count() {
    for circuit in [
        n_controlled_x(7).unwrap(),
        incrementer(6).unwrap(),
        qutrit_toffoli::grover::grover_circuit(3, 2, 2).unwrap(),
    ] {
        let report = ResourceReport::measure(&circuit);
        let k = report.kernels;
        assert_eq!(
            k.identity + k.permutation + k.diagonal + k.dense,
            report.total_ops()
        );
    }
}

#[test]
fn grover_central_gates_are_tagged_diagonal() {
    // Grover's multiply-controlled Z trees end in a |2⟩-controlled Z —
    // a diagonal gate the specialization pass must tag so the simulator
    // takes the diagonal kernel.
    let circuit = qutrit_toffoli::grover::grover_circuit(3, 5, 1).unwrap();
    let report = ResourceReport::measure(&circuit);
    assert!(
        report.kernels.diagonal >= 2,
        "expected the two phase-flip Z gates to be diagonal: {:?}",
        report.kernels
    );
    let tagged: Vec<KernelClass> = circuit.iter().map(KernelClass::of_operation).collect();
    assert!(tagged.contains(&KernelClass::Diagonal));
}
