//! Backend cross-validation: the trajectory Monte Carlo estimate must
//! converge to the exact density-matrix backend's ground-truth fidelity.
//!
//! Every case fixes the input (all-|1⟩) and the seed, so passing is
//! deterministic: the trajectory mean over `trials` samples must land
//! within `3σ` of the exact value, where `σ` is the binomial bound
//! `√(F(1−F)/trials)` (per-trial fidelities lie in `[0, 1]`). The `crossval`
//! bench binary runs the same harness at larger sizes in CI.

use qudit_circuit::Circuit;
use qudit_noise::{
    cross_validate, models, Backend, DensityMatrixBackend, InputState, TrajectoryBackend,
    TrajectoryConfig,
};
use qutrit_toffoli::baselines::qubit_no_ancilla;
use qutrit_toffoli::gen_toffoli::n_controlled_x;

fn fig4_toffoli() -> Circuit {
    n_controlled_x(2).unwrap()
}

fn fixed_input_config(trials: usize, seed: u64) -> TrajectoryConfig {
    TrajectoryConfig {
        trials,
        seed,
        input: InputState::AllOnes,
        ..TrajectoryConfig::default()
    }
}

#[test]
fn trajectory_converges_to_exact_for_every_noise_model_on_the_fig4_toffoli() {
    // The acceptance case: every paper noise model, 3-qutrit test circuit,
    // trajectory within 3σ of the binomial bound around the exact value.
    let circuit = fig4_toffoli();
    let config = fixed_input_config(300, 2019);
    for model in models::all_models() {
        let cv = cross_validate(&circuit, &model, &config, 3.0).unwrap();
        assert!(
            cv.within_bounds(),
            "{}: trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
            model.name,
            cv.estimate.mean,
            cv.exact,
            cv.tolerance
        );
        assert!(cv.exact > 0.9 && cv.exact <= 1.0, "{}", model.name);
    }
}

#[test]
fn trajectory_converges_to_exact_on_a_qubit_circuit() {
    // d = 2 coverage: the 3-controlled qubit-only baseline (4 qubits).
    let circuit = qubit_no_ancilla(3, 2).unwrap();
    let config = fixed_input_config(300, 11);
    let cv = cross_validate(&circuit, &models::sc_t1_gates(), &config, 3.0).unwrap();
    assert!(
        cv.within_bounds(),
        "trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance
    );
}

#[test]
fn backends_agree_exactly_when_there_is_no_noise() {
    // With p1 = p2 = 0 and no T1 the trajectory draws no branches at all,
    // so the two backends must agree to numerical precision — and both must
    // report unit fidelity.
    let noiseless = qudit_noise::NoiseModel {
        name: "NOISELESS".to_string(),
        p1: 0.0,
        p2: 0.0,
        t1: None,
        gate_time_1q: 100e-9,
        gate_time_2q: 300e-9,
    };
    let circuit = fig4_toffoli();
    let config = fixed_input_config(5, 1);
    let exact = DensityMatrixBackend
        .fidelity(&circuit, &noiseless, &config)
        .unwrap();
    let sampled = TrajectoryBackend
        .fidelity(&circuit, &noiseless, &config)
        .unwrap();
    assert!((exact.mean - 1.0).abs() < 1e-10);
    assert!((sampled.mean - exact.mean).abs() < 1e-9);
}

#[test]
fn random_input_cross_validation_shares_input_draws() {
    // With RandomQubitSubspace inputs both backends draw the *same* seeded
    // inputs (trial i uses seed + i before any noise sampling), so the only
    // disagreement left is trajectory noise sampling — the bound still
    // holds at modest trial counts.
    let circuit = fig4_toffoli();
    let config = TrajectoryConfig {
        trials: 200,
        seed: 5,
        input: InputState::RandomQubitSubspace,
        ..TrajectoryConfig::default()
    };
    let cv = cross_validate(&circuit, &models::sc(), &config, 3.0).unwrap();
    assert!(
        cv.within_bounds(),
        "trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance
    );
}
