//! Backend cross-validation: the trajectory Monte Carlo estimate must
//! converge to the exact density-matrix backend's ground-truth fidelity.
//!
//! Every case fixes the input (all-|1⟩) and the seed, so passing is
//! deterministic: the trajectory mean over `trials` samples must land
//! within `3σ` of the exact value, where `σ` is the binomial bound
//! `√(F(1−F)/trials)` (per-trial fidelities lie in `[0, 1]`). The `crossval`
//! bench binary runs the same harness at larger sizes in CI.

use qudit_circuit::Circuit;
use qudit_noise::{
    cross_validate, models, Backend, DensityMatrixBackend, InputState, TrajectoryBackend,
    TrajectoryConfig,
};
use qutrit_toffoli::baselines::qubit_no_ancilla;
use qutrit_toffoli::gen_toffoli::n_controlled_x;

fn fig4_toffoli() -> Circuit {
    n_controlled_x(2).unwrap()
}

fn fixed_input_config(trials: usize, seed: u64) -> TrajectoryConfig {
    TrajectoryConfig {
        trials,
        seed,
        input: InputState::AllOnes,
        ..TrajectoryConfig::default()
    }
}

#[test]
fn trajectory_converges_to_exact_for_every_noise_model_on_the_fig4_toffoli() {
    // The acceptance case: every paper noise model, 3-qutrit test circuit,
    // trajectory within 3σ of the binomial bound around the exact value.
    let circuit = fig4_toffoli();
    let config = fixed_input_config(300, 2019);
    for model in models::all_models() {
        let cv = cross_validate(&circuit, &model, &config, 3.0).unwrap();
        assert!(
            cv.within_bounds(),
            "{}: trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
            model.name,
            cv.estimate.mean,
            cv.exact,
            cv.tolerance
        );
        assert!(cv.exact > 0.9 && cv.exact <= 1.0, "{}", model.name);
    }
}

#[test]
fn trajectory_converges_to_exact_on_a_qubit_circuit() {
    // d = 2 coverage: the 3-controlled qubit-only baseline (4 qubits).
    let circuit = qubit_no_ancilla(3, 2).unwrap();
    let config = fixed_input_config(300, 11);
    let cv = cross_validate(&circuit, &models::sc_t1_gates(), &config, 3.0).unwrap();
    assert!(
        cv.within_bounds(),
        "trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance
    );
}

#[test]
fn trajectory_converges_to_exact_for_each_optional_channel() {
    // Each optional channel alone on the SC baseline, both radices where
    // defined: a drift in one channel's accounting in either backend is
    // attributable to exactly one case. Over-rotation and crosstalk are
    // coherent (non-Pauli) channels, so this also pins the MixedUnitary
    // composition path.
    let cases: Vec<(&str, Circuit, qudit_noise::NoiseModel)> = vec![
        (
            "leakage d=3",
            fig4_toffoli(),
            models::sc().with_leakage(2e-3),
        ),
        (
            "over-rotation d=3",
            fig4_toffoli(),
            models::sc().with_overrotation(0.03),
        ),
        (
            "over-rotation d=2",
            qubit_no_ancilla(3, 2).unwrap(),
            models::sc().with_overrotation(0.03),
        ),
        (
            "crosstalk d=3",
            fig4_toffoli(),
            models::sc().with_crosstalk(3e4),
        ),
        (
            "crosstalk d=2",
            qubit_no_ancilla(3, 2).unwrap(),
            models::sc().with_crosstalk(3e4),
        ),
        (
            "all three at once d=3",
            fig4_toffoli(),
            models::sc()
                .with_leakage(1e-3)
                .with_overrotation(0.02)
                .with_crosstalk(2e4),
        ),
    ];
    let config = fixed_input_config(300, 2019);
    for (label, circuit, model) in cases {
        let cv = cross_validate(&circuit, &model, &config, 3.0).unwrap();
        assert!(
            cv.within_bounds(),
            "{label}: trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
            cv.estimate.mean,
            cv.exact,
            cv.tolerance
        );
        // The channel must actually bite: fidelity strictly below the
        // plain-SC value would be ideal, but exact < 1 is the cheap
        // invariant that catches a silently-ignored field.
        assert!(cv.exact < 1.0 - 1e-6, "{label}: channel did not bite");
    }
}

#[test]
fn backends_agree_exactly_when_there_is_no_noise() {
    // With p1 = p2 = 0 and no T1 the trajectory draws no branches at all,
    // so the two backends must agree to numerical precision — and both must
    // report unit fidelity.
    let noiseless = qudit_noise::NoiseModel {
        name: "NOISELESS".to_string(),
        p1: 0.0,
        p2: 0.0,
        t1: None,
        gate_time_1q: 100e-9,
        gate_time_2q: 300e-9,
        leak_rate: None,
        overrotation: None,
        crosstalk: None,
    };
    let circuit = fig4_toffoli();
    let config = fixed_input_config(5, 1);
    let exact = DensityMatrixBackend
        .fidelity(&circuit, &noiseless, &config)
        .unwrap();
    let sampled = TrajectoryBackend
        .fidelity(&circuit, &noiseless, &config)
        .unwrap();
    assert!((exact.mean - 1.0).abs() < 1e-10);
    assert!((sampled.mean - exact.mean).abs() < 1e-9);
}

#[test]
fn per_edge_error_rates_are_charged_by_both_backends_for_routed_swaps() {
    // A 3-qutrit circuit whose only two-qudit gates join the two ends of a
    // line — every gate needs routed SWAPs, all charged on the line's
    // edges. Poisoning the edge weights (8× the base two-qudit error) must
    // lower the exact fidelity, and the trajectory backend must agree with
    // the exact backend under the same weights.
    use qudit_api::{Executor, JobSpec, PassLevel, Topology};
    let mut circuit = Circuit::new(3, 3);
    for _ in 0..3 {
        circuit
            .push_gate(qudit_circuit::Gate::csum(3), &[0, 2])
            .unwrap();
    }
    let executor = Executor::new();
    let exact_on = |topology: Topology| {
        let spec = JobSpec::builder(circuit.clone())
            .noise(models::sc())
            .level(PassLevel::Physical)
            .backend(qudit_noise::BackendKind::DensityMatrix)
            .trials(1)
            .seed(7)
            .input(qudit_noise::InputState::AllOnes)
            .topology(topology)
            .build()
            .unwrap();
        executor.run(&spec).unwrap().fidelity().unwrap().mean
    };
    let uniform = exact_on(Topology::linear(3).unwrap());
    let poisoned_topology = Topology::linear(3)
        .unwrap()
        .with_edge_quality(vec![8.0, 8.0])
        .unwrap();
    let poisoned = exact_on(poisoned_topology.clone());
    assert!(
        poisoned < uniform - 1e-6,
        "poisoned edges must cost fidelity: {poisoned} vs {uniform}"
    );
    // Consistency: trajectory charges the same per-edge scaling.
    let spec = JobSpec::builder(circuit)
        .noise(models::sc())
        .level(PassLevel::Physical)
        .trials(300)
        .seed(2019)
        .input(qudit_noise::InputState::AllOnes)
        .topology(poisoned_topology)
        .build()
        .unwrap();
    let cv = executor.cross_validate(&spec, 3.0).unwrap();
    assert!(
        cv.within_bounds(),
        "edge-weighted: trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance
    );
}

#[test]
fn random_input_cross_validation_shares_input_draws() {
    // With RandomQubitSubspace inputs both backends draw the *same* seeded
    // inputs (trial i uses seed + i before any noise sampling), so the only
    // disagreement left is trajectory noise sampling — the bound still
    // holds at modest trial counts.
    let circuit = fig4_toffoli();
    let config = TrajectoryConfig {
        trials: 200,
        seed: 5,
        input: InputState::RandomQubitSubspace,
        ..TrajectoryConfig::default()
    };
    let cv = cross_validate(&circuit, &models::sc(), &config, 3.0).unwrap();
    assert!(
        cv.within_bounds(),
        "trajectory {:.6} vs exact {:.6} exceeds bound {:.2e}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance
    );
}
