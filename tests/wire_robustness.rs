//! Fuzz-style robustness properties for the wire layer: whatever bytes
//! arrive, `JobSpec::from_json` must return `Err` — never panic, never
//! overflow the stack on pathological nesting. This is the offline
//! stand-in for a `cargo fuzz` target: the server feeds request bodies
//! straight into this function, so "parse errors are values, not
//! crashes" is a load-bearing service invariant.

use proptest::prelude::*;
use qudit_api::{InputState, JobSpec, Topology};
use qudit_circuit::{Circuit, Control, Gate};

fn valid_spec_json() -> String {
    let mut c = Circuit::new(3, 3);
    c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
        .unwrap();
    c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
        .unwrap();
    c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
        .unwrap();
    // A routed spec, so the topology field sits inside the fuzz surface —
    // every truncation/mutation case below also exercises its parser.
    JobSpec::builder(c)
        .input(InputState::Basis(vec![1, 1, 0]))
        .topology(Topology::linear(3).unwrap())
        .build()
        .unwrap()
        .to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes: decode what we can and parse. The call may
    /// succeed only for the astronomically unlikely valid spec; it must
    /// never panic.
    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0usize..256, 0..512)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = JobSpec::from_json(&text);
    }

    /// Every strict prefix of a valid spec is an incomplete JSON
    /// document: a typed error, not a panic.
    #[test]
    fn truncated_specs_are_typed_errors(fraction in 0usize..10_000) {
        let full = valid_spec_json();
        let cut = fraction * full.len() / 10_000;
        // Stay on a char boundary (the wire form is ASCII, but don't
        // let that assumption panic the slicing if it ever changes).
        let cut = (0..=cut).rev().find(|&i| full.is_char_boundary(i)).unwrap_or(0);
        if cut < full.len() {
            prop_assert!(JobSpec::from_json(&full[..cut]).is_err());
        }
    }

    /// Single-byte corruption of a valid spec: parse may still succeed
    /// (e.g. a digit flipped to another digit) but must never panic.
    #[test]
    fn mutated_specs_never_panic(
        position in 0usize..10_000,
        replacement in 0usize..128,
    ) {
        let full = valid_spec_json();
        let index = position * full.len() / 10_000;
        let mut bytes = full.into_bytes();
        bytes[index] = replacement as u8;
        let text = String::from_utf8_lossy(&bytes);
        let _ = JobSpec::from_json(&text);
    }
}

/// Deep array nesting must hit the parser's recursion guard, not the
/// stack guard page.
#[test]
fn pathological_nesting_is_rejected_without_overflow() {
    for bracket in ["[", "{\"a\":"] {
        let bomb = bracket.repeat(20_000);
        assert!(
            JobSpec::from_json(&bomb).is_err(),
            "nesting bomb {bracket:?} must be a typed error"
        );
    }
}

/// The fuzz target's sanity anchor: the valid spec itself still parses.
#[test]
fn the_valid_spec_round_trips() {
    let full = valid_spec_json();
    let spec = JobSpec::from_json(&full).expect("valid spec parses");
    assert_eq!(spec.to_json(), full);
}

/// Hostile topology payloads inside an otherwise valid spec: typed errors,
/// never a panic or a giant allocation.
#[test]
fn hostile_topology_payloads_are_typed_errors() {
    let full = valid_spec_json();
    let good = "\"topology\":{\"kind\":\"linear\",\"sites\":3}";
    assert!(full.contains(good), "anchor drifted: {full}");
    for bad in [
        "\"topology\":{\"kind\":\"moebius\",\"sites\":3}",
        "\"topology\":{\"kind\":\"linear\",\"sites\":0}",
        "\"topology\":{\"kind\":\"linear\",\"sites\":99999999999}",
        "\"topology\":{\"kind\":\"grid\",\"rows\":100000,\"cols\":100000}",
        "\"topology\":{\"kind\":\"heavy-hex\",\"cells\":123456789}",
        "\"topology\":{\"kind\":\"linear\",\"sites\":4}",
        "\"topology\":{\"kind\":\"linear\",\"sites\":3,\"site_quality\":[-1.0,1.0,1.0]}",
        "\"topology\":{\"kind\":\"linear\",\"sites\":3,\"site_quality\":[1.0]}",
        "\"topology\":17",
    ] {
        let tampered = full.replace(good, bad);
        assert!(
            JobSpec::from_json(&tampered).is_err(),
            "payload {bad} must be rejected"
        );
    }
}
