//! Cross-crate integration tests for the noise stack and the experiment
//! harness: the channels are physical, the noise-model tables match the
//! paper, and the Figure 11 fidelity ordering (QUTRIT ≫ QUBIT) holds on a
//! reduced-size instance.
//!
//! The fidelity-ordering tests run on the exact density-matrix backend, so
//! they are *deterministic*: they compare ground-truth values, not Monte
//! Carlo samples. (Their predecessors asserted on trajectory means and had
//! to be widened to ~100 trials to stop being coin flips under RNG-stream
//! changes.)

use qudit_noise::{
    exact_fidelity, lambda_m, models, qutrit_two_qudit_reliability_ratio, InputState,
    TrajectoryConfig,
};
use qutrit_toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrit_toffoli::cost::{paper_depth_model, paper_two_qudit_gate_model, Construction};
use qutrit_toffoli::gen_toffoli::n_controlled_x;

#[test]
fn all_paper_noise_models_produce_valid_channels() {
    for model in models::all_models() {
        for d in [2usize, 3] {
            model
                .single_qudit_gate_error(d)
                .unwrap()
                .validate()
                .unwrap();
            model.two_qudit_gate_error(d).unwrap().validate().unwrap();
        }
    }
}

#[test]
fn qutrit_gates_are_less_reliable_per_operation_but_fewer_are_needed() {
    // Section 7.1.1: two-qutrit gates are (1-80p2)/(1-15p2) times less
    // reliable than two-qubit gates...
    let p2 = models::sc().p2;
    let per_gate_ratio = qutrit_two_qudit_reliability_ratio(p2);
    assert!(per_gate_ratio < 1.0);
    // ...but the construction needs ~66x fewer of them (Figure 10), which is
    // why the qutrit circuit wins overall.
    let n = 100;
    let gate_ratio = paper_two_qudit_gate_model(Construction::Qubit, n)
        / paper_two_qudit_gate_model(Construction::Qutrit, n);
    assert!(gate_ratio > 60.0);
}

#[test]
fn idle_error_probability_increases_with_duration_and_level() {
    let t1 = 1e-3;
    assert!(lambda_m(1, 300e-9, t1) > lambda_m(1, 100e-9, t1));
    assert!(lambda_m(2, 300e-9, t1) > lambda_m(1, 300e-9, t1));
}

#[test]
fn figure11_ordering_holds_exactly_at_reduced_size() {
    // A 4-control instance is enough to see the qualitative ordering of
    // Figure 11: QUTRIT > QUBIT+ANCILLA > QUBIT under the SC model. The
    // exact density-matrix backend makes the comparison deterministic: the
    // three numbers are ground truth (~0.9037, ~0.8720, ~0.8692 on the
    // all-|1⟩ input), not Monte Carlo samples, so no trial count or RNG
    // stream can flip the assertion.
    let n = 4;
    let config = TrajectoryConfig {
        trials: 1,
        seed: 7,
        input: InputState::AllOnes,
        ..TrajectoryConfig::default()
    };
    let model = models::sc();

    let qutrit = exact_fidelity(&n_controlled_x(n).unwrap(), &model, &config)
        .unwrap()
        .mean;
    let qubit = exact_fidelity(&qubit_no_ancilla(n, 2).unwrap(), &model, &config)
        .unwrap()
        .mean;
    let ancilla = exact_fidelity(&qubit_one_dirty_ancilla(n, 2).unwrap(), &model, &config)
        .unwrap()
        .mean;

    assert!(
        qutrit > ancilla && ancilla > qubit,
        "expected QUTRIT ({qutrit:.4}) > QUBIT+ANCILLA ({ancilla:.4}) > QUBIT ({qubit:.4})"
    );
    assert!(
        qutrit > 0.85,
        "qutrit fidelity should stay high: {qutrit:.4}"
    );
}

#[test]
fn trapped_ion_qutrit_models_favour_the_dressed_qutrit_exactly() {
    // Exact backend: DRESSED_QUTRIT's better two-qudit error rate must give
    // a strictly higher ground-truth fidelity than BARE_QUTRIT — no
    // tolerance band needed once sampling noise is out of the comparison.
    let n = 4;
    let config = TrajectoryConfig {
        trials: 1,
        seed: 3,
        input: InputState::AllOnes,
        ..TrajectoryConfig::default()
    };
    let circuit = n_controlled_x(n).unwrap();
    let bare = exact_fidelity(&circuit, &models::bare_qutrit(), &config)
        .unwrap()
        .mean;
    let dressed = exact_fidelity(&circuit, &models::dressed_qutrit(), &config)
        .unwrap()
        .mean;
    assert!(
        dressed > bare,
        "dressed ({dressed:.6}) must beat bare ({bare:.6}) exactly"
    );
    assert!(dressed > 0.99);
}

#[test]
fn figure9_and_figure10_models_have_the_paper_shape() {
    // Figure 9: depth ordering and the log-vs-linear gap widens with N.
    let gap_at_50 =
        paper_depth_model(Construction::Qubit, 50) / paper_depth_model(Construction::Qutrit, 50);
    let gap_at_200 =
        paper_depth_model(Construction::Qubit, 200) / paper_depth_model(Construction::Qutrit, 200);
    assert!(gap_at_200 > gap_at_50);
    // Figure 10: all three series are linear, so their ratios are constant.
    let r1 = paper_two_qudit_gate_model(Construction::QubitAncilla, 50)
        / paper_two_qudit_gate_model(Construction::Qutrit, 50);
    let r2 = paper_two_qudit_gate_model(Construction::QubitAncilla, 200)
        / paper_two_qudit_gate_model(Construction::Qutrit, 200);
    assert!((r1 - r2).abs() < 1e-9);
    assert!((r1 - 8.0).abs() < 1.0, "the paper quotes an 8x gap");
}
