//! Cross-crate integration tests: every Generalized Toffoli construction
//! (qutrit tree, qubit baselines, He) implements the same function, checked
//! with both the classical simulator and the state-vector simulator.

use qudit_circuit::classical::{all_binary_basis_states, simulate_classical};
use qudit_circuit::Schedule;
use qudit_sim::{qubit_subspace_probability, Simulator};
use qutrit_toffoli::baselines::{he_log_depth, qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::verify::{
    verify_incrementer_classical, verify_n_controlled_x_classical,
    verify_n_controlled_x_statevector,
};

#[test]
fn all_constructions_agree_on_the_n_controlled_not() {
    let n = 5;
    let qutrit = n_controlled_x(n).unwrap();
    let qubit_ancilla = qubit_one_dirty_ancilla(n, 2).unwrap();
    let he = he_log_depth(n, 2).unwrap();

    for input in all_binary_basis_states(n + 1) {
        let out_qutrit = simulate_classical(&qutrit, &input).unwrap();

        // The baselines have extra qubits (ancilla) beyond controls+target;
        // pad the input with zeros and compare only the shared prefix.
        let mut padded = input.clone();
        padded.resize(qubit_ancilla.width(), 0);
        let out_ancilla = simulate_classical(&qubit_ancilla, &padded).unwrap();

        let mut padded_he = input.clone();
        padded_he.resize(he.width(), 0);
        let out_he = simulate_classical(&he, &padded_he).unwrap();

        assert_eq!(
            &out_qutrit[..n + 1],
            &out_ancilla[..n + 1],
            "input {input:?}"
        );
        assert_eq!(&out_qutrit[..n + 1], &out_he[..n + 1], "input {input:?}");
    }
}

#[test]
fn qubit_baseline_statevector_matches_qutrit_classical() {
    let n = 4;
    let qutrit = n_controlled_x(n).unwrap();
    let qubit = qubit_no_ancilla(n, 2).unwrap();
    let sim = Simulator::new();
    for input in all_binary_basis_states(n + 1) {
        let expected = simulate_classical(&qutrit, &input).unwrap();
        let out = sim.run_on_basis_state(&qubit, &input).unwrap();
        assert!(
            (out.probability(&expected).unwrap() - 1.0).abs() < 1e-7,
            "input {input:?}"
        );
    }
}

#[test]
fn verification_helpers_accept_all_constructions() {
    assert!(
        verify_n_controlled_x_classical(&n_controlled_x(8).unwrap(), 8, 8)
            .unwrap()
            .is_none()
    );
    assert!(
        verify_n_controlled_x_classical(&qubit_one_dirty_ancilla(6, 2).unwrap(), 6, 6)
            .unwrap()
            .is_none()
    );
    assert!(
        verify_n_controlled_x_statevector(&qubit_no_ancilla(3, 2).unwrap(), 3, 3)
            .unwrap()
            .is_none()
    );
    assert!(
        verify_incrementer_classical(&qutrit_toffoli::incrementer::incrementer(7).unwrap())
            .unwrap()
            .is_none()
    );
}

#[test]
fn qutrit_construction_never_leaks_the_two_state_on_binary_inputs() {
    let n = 6;
    let circuit = n_controlled_x(n).unwrap();
    let sim = Simulator::new();
    // Superposition input over the qubit subspace: apply the circuit and
    // check the output stays entirely in the qubit subspace.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(17);
    let input = qudit_core::random_qubit_subspace_state(3, n + 1, &mut rng).unwrap();
    let out = sim.run_with_state(&circuit, input);
    assert!((qubit_subspace_probability(&out) - 1.0).abs() < 1e-9);
}

#[test]
fn qutrit_depth_beats_baselines_even_at_moderate_sizes() {
    let n = 13; // the paper's simulated size
    let qutrit_depth = Schedule::asap(&n_controlled_x(n).unwrap()).depth();
    let ancilla_depth = Schedule::asap(&qubit_one_dirty_ancilla(n, 2).unwrap()).depth();
    let qubit_depth = Schedule::asap(&qubit_no_ancilla(n, 2).unwrap()).depth();
    assert!(qutrit_depth < ancilla_depth);
    assert!(ancilla_depth < qubit_depth);
    assert!(qutrit_depth <= 9, "logical tree depth at n=13 is small");
}

#[test]
fn generalized_toffoli_composes_with_its_inverse() {
    let n = 6;
    let circuit = n_controlled_x(n).unwrap();
    let mut round_trip = circuit.clone();
    round_trip.extend(&circuit.inverse()).unwrap();
    for input in all_binary_basis_states(n + 1) {
        let out = simulate_classical(&round_trip, &input).unwrap();
        assert_eq!(out, input);
    }
}
