//! Workspace-level property-based tests: invariants that span the circuit
//! IR, the simulator, the noise channels and the paper's constructions.

use proptest::prelude::*;
use qudit_circuit::classical::simulate_classical;
use qudit_circuit::{Circuit, Control, Gate, Schedule};
use qudit_sim::Simulator;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::{incrementer, register_to_value, value_to_register};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a pseudo-random classical qutrit circuit from a seed.
fn random_classical_circuit(width: usize, gates: usize, seed: u64) -> Circuit {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(3, width);
    for _ in 0..gates {
        let target = rng.gen_range(0..width);
        let gate = match rng.gen_range(0..4) {
            0 => Gate::x(3),
            1 => Gate::increment(3),
            2 => Gate::decrement(3),
            _ => Gate::swap_levels(3, 0, 2),
        };
        if width > 1 && rng.gen_bool(0.6) {
            let mut control = rng.gen_range(0..width);
            while control == target {
                control = rng.gen_range(0..width);
            }
            let level = rng.gen_range(0..3);
            circuit
                .push_controlled(gate, &[Control::new(control, level)], &[target])
                .unwrap();
        } else {
            circuit.push_gate(gate, &[target]).unwrap();
        }
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_classical_circuits_are_reversible(seed in 0u64..10_000, width in 2usize..6) {
        let circuit = random_classical_circuit(width, 12, seed);
        let mut round_trip = circuit.clone();
        round_trip.extend(&circuit.inverse()).unwrap();
        for input in qudit_circuit::classical::all_basis_states(3, width) {
            let out = simulate_classical(&round_trip, &input).unwrap();
            prop_assert_eq!(out, input);
        }
    }

    #[test]
    fn statevector_and_classical_simulation_agree_on_random_circuits(
        seed in 0u64..10_000,
        width in 2usize..5
    ) {
        let circuit = random_classical_circuit(width, 10, seed);
        let sim = Simulator::new();
        for input in qudit_circuit::classical::all_basis_states(3, width) {
            let expected = simulate_classical(&circuit, &input).unwrap();
            let out = sim.run_on_basis_state(&circuit, &input).unwrap();
            prop_assert!((out.probability(&expected).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unitary_evolution_preserves_the_norm(seed in 0u64..10_000, width in 2usize..5) {
        let circuit = random_classical_circuit(width, 15, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let input = qudit_core::random_state(3, width, &mut rng).unwrap();
        let out = Simulator::new().run_with_state(&circuit, input);
        prop_assert!((out.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_depth_never_exceeds_operation_count(seed in 0u64..10_000, width in 2usize..7) {
        let circuit = random_classical_circuit(width, 20, seed);
        let depth = Schedule::asap(&circuit).depth();
        prop_assert!(depth <= circuit.len());
        prop_assert!(depth >= circuit.len().div_ceil(circuit.width()));
    }

    #[test]
    fn generalized_toffoli_flips_exactly_on_all_ones(
        n in 2usize..9,
        target_bit in 0usize..2,
        flip_index in 0usize..8
    ) {
        let circuit = n_controlled_x(n).unwrap();
        // All-ones controls flip the target.
        let mut input = vec![1usize; n + 1];
        input[n] = target_bit;
        let out = simulate_classical(&circuit, &input).unwrap();
        prop_assert_eq!(out[n], 1 - target_bit);
        // Any single zeroed control prevents the flip.
        if n > 0 {
            let mut broken = input.clone();
            broken[flip_index % n] = 0;
            let out = simulate_classical(&circuit, &broken).unwrap();
            prop_assert_eq!(out[n], target_bit);
        }
    }

    #[test]
    fn incrementer_adds_one_modulo_2_to_the_n(value in 0usize..1024, n in 1usize..11) {
        let modulus = 1usize << n;
        let value = value % modulus;
        let circuit = incrementer(n).unwrap();
        let out = simulate_classical(&circuit, &value_to_register(value, n)).unwrap();
        prop_assert_eq!(register_to_value(&out), (value + 1) % modulus);
    }

    #[test]
    fn repeated_increments_walk_the_whole_ring(start in 0usize..64, steps in 1usize..9) {
        let n = 6;
        let circuit = incrementer(n).unwrap();
        let mut register = value_to_register(start % 64, n);
        for _ in 0..steps {
            register = simulate_classical(&circuit, &register).unwrap();
        }
        prop_assert_eq!(register_to_value(&register), (start + steps) % 64);
    }
}
