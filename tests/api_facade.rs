//! Façade-enforcement check (grep-style, as the API redesign's acceptance
//! criterion requires): no example or bench source may construct a
//! simulator engine directly — `TrajectorySimulator`,
//! `DensityNoiseSimulator` and `CompiledCircuit` are internal names now;
//! everything outside the library crates goes through
//! `qudit_api::Executor`.

use std::path::{Path, PathBuf};

/// The engine type names consumers must not reach for.
const FORBIDDEN: &[&str] = &[
    "TrajectorySimulator",
    "DensityNoiseSimulator",
    "CompiledCircuit",
    "CompiledDensityCircuit",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_example_or_bench_source_constructs_a_simulator_directly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root.join("examples"), &mut sources);
    rust_sources(&root.join("crates/bench/src"), &mut sources);
    rust_sources(&root.join("crates/bench/benches"), &mut sources);
    assert!(
        sources.len() >= 15,
        "expected the examples plus the bench bins/benches, found {} file(s)",
        sources.len()
    );

    let mut violations = Vec::new();
    for path in sources {
        let text = std::fs::read_to_string(&path).expect("readable source file");
        for (lineno, line) in text.lines().enumerate() {
            for name in FORBIDDEN {
                if line.contains(name) {
                    violations.push(format!(
                        "{}:{}: uses {name}",
                        path.strip_prefix(root).unwrap_or(&path).display(),
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "consumers must go through qudit_api::Executor; direct engine use found:\n{}",
        violations.join("\n")
    );
}
