//! Wire-format suite for the `qudit-api` façade: property-based round-trip
//! tests (`Circuit` / `NoiseModel` / `JobSpec` → JSON → back, equal — with
//! every float bit-exact), plus a golden serialized Figure 4 Toffoli job
//! checked into `tests/golden/` so the wire format cannot drift silently.
//!
//! Regenerate the golden file after an *intentional* format change with:
//! `UPDATE_GOLDEN=1 cargo test --test wire_format`

use proptest::prelude::*;
use qudit_api::{BackendKind, InputState, JobSpec, PassLevel, Topology};
use qudit_circuit::{Circuit, Control, Gate};
use qudit_core::{complex_gaussian, CMatrix, Complex};
use qudit_noise::{models, NoiseModel};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Haar-ish random unitary via modified Gram–Schmidt on a Gaussian
/// matrix (same construction as the pass-pipeline suite) — exercises
/// irrational float entries, where only shortest-roundtrip rendering
/// survives a JSON trip bit-exactly.
fn random_unitary(n: usize, rng: &mut StdRng) -> CMatrix {
    let mut cols: Vec<Vec<Complex>> = (0..n)
        .map(|_| (0..n).map(|_| complex_gaussian(rng)).collect())
        .collect();
    for i in 0..n {
        let (done, rest) = cols.split_at_mut(i);
        let col = &mut rest[0];
        for prev in done.iter() {
            let proj: Complex = prev
                .iter()
                .zip(col.iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            for (x, y) in col.iter_mut().zip(prev.iter()) {
                *x -= proj * *y;
            }
        }
        let norm: f64 = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-9, "degenerate random matrix");
        for z in col.iter_mut() {
            *z = z.scale(1.0 / norm);
        }
    }
    let mut m = CMatrix::zeros(n, n);
    for (c, col) in cols.iter().enumerate() {
        for (r, z) in col.iter().enumerate() {
            m.set(r, c, *z);
        }
    }
    m
}

/// A random circuit mixing classical, diagonal and dense gates with and
/// without controls.
fn random_circuit(dim: usize, width: usize, ops: usize, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(dim, width);
    for _ in 0..ops {
        let target = rng.gen_range(0..width);
        let gate = match rng.gen_range(0..5) {
            0 => Gate::increment(dim),
            1 => Gate::clock(dim),
            2 => Gate::h(dim),
            3 => Gate::from_matrix("U", dim, random_unitary(dim, rng)).unwrap(),
            _ => Gate::x(dim),
        };
        if width > 1 && rng.gen_bool(0.5) {
            let mut control = rng.gen_range(0..width);
            while control == target {
                control = rng.gen_range(0..width);
            }
            circuit
                .push_controlled(
                    gate,
                    &[Control::new(control, rng.gen_range(0..dim))],
                    &[target],
                )
                .unwrap();
        } else {
            circuit.push_gate(gate, &[target]).unwrap();
        }
    }
    circuit
}

/// A random model whose optional channels are valid for dimension `dim`
/// (leakage needs a |2⟩ level, so it is only drawn when `dim ≥ 3`).
fn random_model(rng: &mut StdRng, dim: usize) -> NoiseModel {
    NoiseModel {
        name: format!("RANDOM-{}", rng.gen_range(0..1000)),
        p1: rng.gen_range(0.0..1e-3),
        p2: rng.gen_range(0.0..1e-3),
        t1: if rng.gen_bool(0.5) {
            Some(rng.gen_range(1e-5..1e-1))
        } else {
            None
        },
        gate_time_1q: rng.gen_range(1e-9..1e-6),
        gate_time_2q: rng.gen_range(1e-9..1e-6),
        leak_rate: if dim >= 3 && rng.gen_bool(0.5) {
            Some(rng.gen_range(0.0..1e-3))
        } else {
            None
        },
        overrotation: if rng.gen_bool(0.5) {
            Some(rng.gen_range(0.0..0.1))
        } else {
            None
        },
        crosstalk: if rng.gen_bool(0.5) {
            Some(rng.gen_range(0.0..1e5))
        } else {
            None
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Circuits round-trip through JSON with every matrix entry bit-exact.
    #[test]
    fn circuit_round_trips_through_json(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..4);
        let ops = rng.gen_range(1..8);
        let circuit = random_circuit(dim, width, ops, &mut rng);
        let back: Circuit = serde::json::from_str(&serde::json::to_string(&circuit))
            .expect("round trip");
        prop_assert_eq!(&back, &circuit);
    }

    /// Noise models round-trip (random parameters, optional T1).
    #[test]
    fn noise_model_round_trips_through_json(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = random_model(&mut rng, 3);
        let back: NoiseModel = serde::json::from_str(&serde::json::to_string(&model))
            .expect("round trip");
        prop_assert_eq!(&back, &model);
    }

    /// Whole job specs — circuit + level + backend + model + config —
    /// round-trip and re-validate.
    #[test]
    fn job_spec_round_trips_through_json(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..4);
        let circuit = random_circuit(dim, width, rng.gen_range(1..6), &mut rng);
        let mut builder = JobSpec::builder(circuit)
            .trials(rng.gen_range(1..500))
            .seed(rng.gen_range(0..u64::MAX));
        if rng.gen_bool(0.5) {
            builder = builder
                .noise(random_model(&mut rng, dim))
                .level(if rng.gen_bool(0.5) {
                    PassLevel::Physical
                } else {
                    PassLevel::NoisePreserving
                });
        } else if rng.gen_bool(0.5) {
            let sweep: Vec<Vec<usize>> = (0..rng.gen_range(1..4))
                .map(|_| (0..width).map(|_| rng.gen_range(0..dim)).collect())
                .collect();
            builder = builder.sweep(sweep);
        }
        if rng.gen_bool(0.3) {
            builder = builder.backend(BackendKind::DensityMatrix);
        }
        if rng.gen_bool(0.4) {
            let topology = match rng.gen_range(0..3) {
                0 => Topology::all_to_all(width).unwrap(),
                1 => Topology::linear(width).unwrap(),
                _ => Topology::ring(width).unwrap(),
            };
            builder = builder.topology(topology);
        }
        let spec = builder.build().expect("valid random spec");
        let back = JobSpec::from_json(&spec.to_json()).expect("round trip");
        prop_assert_eq!(&back, &spec);
        // Pretty output parses to the same spec.
        let back = JobSpec::from_json(&spec.to_json_pretty()).expect("pretty round trip");
        prop_assert_eq!(&back, &spec);
    }
}

/// The golden job: the paper's Figure 4 Toffoli under SC+T1+GATES on the
/// exact backend — the canonical wire payload a service front end would
/// submit.
fn fig4_job() -> JobSpec {
    JobSpec::builder(n_controlled_x(2).expect("fig4 construction"))
        .backend(BackendKind::DensityMatrix)
        .noise(models::sc_t1_gates())
        .trials(400)
        .seed(2019)
        .input(InputState::AllOnes)
        .build()
        .expect("valid golden spec")
}

#[test]
fn golden_fig4_toffoli_job_matches_the_checked_in_wire_format() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig4_toffoli_job.json"
    );
    let spec = fig4_job();
    let rendered = spec.to_json_pretty();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run `UPDATE_GOLDEN=1 cargo test --test wire_format` once");
    // Byte-exact: the serializer is deterministic, so any diff is a real
    // wire-format change and must be intentional.
    assert_eq!(
        golden, rendered,
        "wire format drifted from tests/golden/fig4_toffoli_job.json"
    );
    // And the checked-in payload deserializes back to the same job.
    assert_eq!(JobSpec::from_json(&golden).unwrap(), spec);
    // The topology field is strictly additive: the pre-routing golden
    // payload has no such key, and parses with none attached.
    assert!(!golden.contains("topology"));
    assert!(JobSpec::from_json(&golden).unwrap().topology().is_none());
}

#[test]
fn golden_routed_fig4_job_matches_the_checked_in_wire_format() {
    // The routed variant of the golden job: same circuit and model, routed
    // for a 3-site line — pins the topology field's wire layout.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig4_toffoli_routed_job.json"
    );
    let spec = JobSpec::builder(n_controlled_x(2).expect("fig4 construction"))
        .backend(BackendKind::DensityMatrix)
        .noise(models::sc_t1_gates())
        .trials(400)
        .seed(2019)
        .input(InputState::AllOnes)
        .topology(Topology::linear(3).expect("3-site line"))
        .build()
        .expect("valid routed golden spec");
    let rendered = spec.to_json_pretty();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run `UPDATE_GOLDEN=1 cargo test --test wire_format` once");
    assert_eq!(
        golden, rendered,
        "wire format drifted from tests/golden/fig4_toffoli_routed_job.json"
    );
    assert_eq!(JobSpec::from_json(&golden).unwrap(), spec);
}
