//! Batch-execution determinism: [`Executor::run_batch`] must produce
//! results **bit-identical** to running the same specs sequentially through
//! [`Executor::run`] — across all 7 paper noise models, both accounting
//! levels, and noise-free sweeps — even though the batch fans out across
//! rayon workers and shares one structure-keyed compile cache.

use qudit_api::{BackendKind, Executor, InputState, JobSpec, Outcome, PassLevel};
use qudit_circuit::Circuit;
use qudit_noise::models;
use qutrit_toffoli::gen_toffoli::n_controlled_x;

fn fig4_toffoli() -> Circuit {
    n_controlled_x(2).unwrap()
}

/// Strict bit-level equality for outcomes (f64 `==` would also pass for
/// `-0.0 == 0.0`; the determinism claim is stronger).
fn assert_bit_identical(a: &Outcome, b: &Outcome) {
    match (a, b) {
        (Outcome::Fidelity(x), Outcome::Fidelity(y)) => {
            assert_eq!(x.mean.to_bits(), y.mean.to_bits());
            assert_eq!(x.std_error.to_bits(), y.std_error.to_bits());
            assert_eq!(x.trials, y.trials);
        }
        (Outcome::States(xs), Outcome::States(ys)) => {
            assert_eq!(xs.len(), ys.len());
            for (x, y) in xs.iter().zip(ys) {
                let (px, py) = (x.probabilities(), y.probabilities());
                assert_eq!(px.len(), py.len());
                for (a, b) in px.iter().zip(&py) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                match (x.pure(), y.pure()) {
                    (Some(sx), Some(sy)) => {
                        for (za, zb) in sx.amplitudes().iter().zip(sy.amplitudes()) {
                            assert_eq!(za.re.to_bits(), zb.re.to_bits());
                            assert_eq!(za.im.to_bits(), zb.im.to_bits());
                        }
                    }
                    (None, None) => {}
                    _ => panic!("output representations differ"),
                }
            }
        }
        _ => panic!("outcome kinds differ"),
    }
}

#[test]
fn batch_fidelities_are_bit_identical_to_sequential_across_all_models() {
    // Every paper noise model × both backends on the fig4 Toffoli, plus a
    // logical-accounting job and a wider trajectory-only case, all in one
    // batch.
    let mut specs: Vec<JobSpec> = Vec::new();
    for model in models::all_models() {
        for backend in [BackendKind::Trajectory, BackendKind::DensityMatrix] {
            specs.push(
                JobSpec::builder(fig4_toffoli())
                    .backend(backend)
                    .noise(model.clone())
                    .trials(25)
                    .seed(2019)
                    .input(InputState::AllOnes)
                    .build()
                    .unwrap(),
            );
        }
    }
    specs.push(
        JobSpec::builder(fig4_toffoli())
            .noise(models::sc())
            .level(PassLevel::NoisePreserving)
            .trials(25)
            .seed(7)
            .build()
            .unwrap(),
    );
    specs.push(
        JobSpec::builder(n_controlled_x(4).unwrap())
            .noise(models::sc_t1_gates())
            .trials(10)
            .seed(11)
            .build()
            .unwrap(),
    );

    // Sequential reference on a fresh executor; batch on another fresh one
    // (so neither run sees the other's cache).
    let sequential: Vec<_> = {
        let executor = Executor::new();
        specs.iter().map(|s| executor.run(s).unwrap()).collect()
    };
    let batch = Executor::new().run_batch(&specs);

    assert_eq!(batch.len(), sequential.len());
    for (b, s) in batch.into_iter().zip(&sequential) {
        let b = b.unwrap();
        assert_eq!(b.backend, s.backend);
        assert_eq!(b.resources, s.resources);
        assert_bit_identical(&b.outcome, &s.outcome);
    }
}

#[test]
fn batch_sweeps_are_bit_identical_to_sequential() {
    let sweep: Vec<Vec<usize>> = (0..8)
        .map(|v: usize| (0..3).map(|i| (v >> i) & 1).collect())
        .collect();
    let specs: Vec<JobSpec> = [BackendKind::Trajectory, BackendKind::DensityMatrix]
        .into_iter()
        .map(|backend| {
            JobSpec::builder(fig4_toffoli())
                .backend(backend)
                .sweep(sweep.clone())
                .build()
                .unwrap()
        })
        .collect();
    let executor = Executor::new();
    let sequential: Vec<_> = specs.iter().map(|s| executor.run(s).unwrap()).collect();
    let batch = executor.run_batch(&specs);
    for (b, s) in batch.into_iter().zip(&sequential) {
        assert_bit_identical(&b.unwrap().outcome, &s.outcome);
    }
}

#[test]
fn batch_shares_one_compilation_per_distinct_circuit_and_level() {
    // 7 models × 1 circuit at one level: one compilation. The wider case
    // adds a second.
    let mut specs: Vec<JobSpec> = models::all_models()
        .into_iter()
        .map(|model| {
            JobSpec::builder(fig4_toffoli())
                .noise(model)
                .trials(2)
                .build()
                .unwrap()
        })
        .collect();
    specs.push(
        JobSpec::builder(n_controlled_x(3).unwrap())
            .noise(models::sc())
            .trials(2)
            .build()
            .unwrap(),
    );
    let executor = Executor::new();
    for result in executor.run_batch(&specs) {
        result.unwrap();
    }
    assert_eq!(executor.cached_compilations(), 2);
}

#[test]
fn batch_surfaces_per_job_errors_without_poisoning_the_rest() {
    // A model that is unphysical at d = 3 (p2 too large for the 80-channel
    // qutrit depolarizing) must fail its own job only.
    let bad = qudit_noise::NoiseModel {
        name: "TOO-NOISY".to_string(),
        p1: 0.0,
        p2: 0.9,
        t1: None,
        gate_time_1q: 1e-7,
        gate_time_2q: 3e-7,
        leak_rate: None,
        overrotation: None,
        crosstalk: None,
    };
    let specs = vec![
        JobSpec::builder(fig4_toffoli())
            .noise(models::sc())
            .trials(2)
            .build()
            .unwrap(),
        JobSpec::builder(fig4_toffoli())
            .noise(bad)
            .trials(2)
            .build()
            .unwrap(),
    ];
    let results = Executor::new().run_batch(&specs);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
}

#[test]
fn batch_deduplicates_identical_specs_and_stays_bit_identical() {
    // Three distinct specs, each submitted more than once and out of
    // order. The batch must simulate each distinct spec exactly once,
    // fan the shared result out to every duplicate slot, and stay
    // bit-identical to a non-deduplicating sequential run.
    let distinct: Vec<JobSpec> = [models::sc(), models::sc_t1(), models::bare_qutrit()]
        .into_iter()
        .map(|model| {
            JobSpec::builder(fig4_toffoli())
                .noise(model)
                .trials(8)
                .build()
                .unwrap()
        })
        .collect();
    let specs: Vec<JobSpec> = [0usize, 1, 0, 2, 1, 0]
        .into_iter()
        .map(|i| distinct[i].clone())
        .collect();

    let executor = Executor::new();
    let before = executor.jobs_simulated();
    let batch = executor.run_batch(&specs);
    assert_eq!(
        executor.jobs_simulated() - before,
        3,
        "6 submitted, 3 distinct: dedup must simulate each spec once"
    );

    let fresh = Executor::new();
    for (spec, result) in specs.iter().zip(&batch) {
        let sequential = fresh.run(spec).unwrap();
        assert_bit_identical(&result.as_ref().unwrap().outcome, &sequential.outcome);
    }
}
