//! Pass-pipeline invariance suite.
//!
//! Two properties pin the compiler's semantics:
//!
//! 1. **Unitary preservation (Ideal level):** for random circuits over
//!    `d ∈ {2, 3, 4}`, replaying the pass-transformed circuit through the
//!    compiled kernels must produce the same state as the retained naive
//!    reference oracle (`qudit_sim::reference`) replaying the *raw*
//!    circuit, on random input states.
//! 2. **Noise preservation (NoisePreserving level):** the pipeline must be
//!    the identity transformation — operation list and schedule exactly
//!    equal — and the exact density-matrix backend's fidelity must be
//!    bit-identical on the raw and transformed circuits.
//!
//! Plus cross-checks that the specialization tags match the kernels the
//! simulator actually dispatches, and that the pipeline measurably reduces
//! kernel invocations on paper constructions (Grover, the incrementer).

use proptest::prelude::*;
use qudit_circuit::passes::{compile, PassLevel};
use qudit_circuit::{Circuit, Control, Gate, Schedule};
use qudit_core::{complex_gaussian, random_state, CMatrix, Complex};
use qudit_noise::{exact_fidelity, models, InputState, TrajectoryConfig};
use qudit_sim::{reference, ApplyPlan, CompiledCircuit};
use qutrit_toffoli::grover::{grover_circuit, optimal_iterations};
use qutrit_toffoli::incrementer::incrementer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-10;

/// A Haar-ish random unitary via modified Gram–Schmidt on a Gaussian
/// matrix (same construction as the kernel equivalence suite).
fn random_unitary(n: usize, rng: &mut StdRng) -> CMatrix {
    let mut cols: Vec<Vec<Complex>> = (0..n)
        .map(|_| (0..n).map(|_| complex_gaussian(rng)).collect())
        .collect();
    for i in 0..n {
        let (done, rest) = cols.split_at_mut(i);
        let col = &mut rest[0];
        for prev in done.iter() {
            let proj: Complex = prev
                .iter()
                .zip(col.iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            for (x, y) in col.iter_mut().zip(prev.iter()) {
                *x -= proj * *y;
            }
        }
        let norm: f64 = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-9, "degenerate random matrix");
        for z in col.iter_mut() {
            *z = z.scale(1.0 / norm);
        }
    }
    let mut m = CMatrix::zeros(n, n);
    for (c, col) in cols.iter().enumerate() {
        for (r, z) in col.iter().enumerate() {
            m.set(r, c, *z);
        }
    }
    m
}

/// A random circuit mixing every gate structure the passes care about:
/// dense unitaries, classical permutations, diagonals, controlled ops —
/// with deliberate adjacent repeats and inverse pairs so fusion and
/// cancellation actually fire.
fn random_circuit(dim: usize, width: usize, ops: usize, rng: &mut StdRng) -> Circuit {
    let mut circuit = Circuit::new(dim, width);
    while circuit.len() < ops {
        let target = rng.gen_range(0..width);
        let gate = match rng.gen_range(0..6) {
            0 => Gate::increment(dim),
            1 => Gate::decrement(dim),
            2 => Gate::clock(dim),
            3 => Gate::x(dim),
            4 => Gate::from_matrix("U", dim, random_unitary(dim, rng)).unwrap(),
            _ => Gate::h(dim),
        };
        let controlled = width > 1 && rng.gen_bool(0.4);
        if controlled {
            let mut control = rng.gen_range(0..width);
            while control == target {
                control = rng.gen_range(0..width);
            }
            let level = rng.gen_range(0..dim);
            circuit
                .push_controlled(gate.clone(), &[Control::new(control, level)], &[target])
                .unwrap();
            // Sometimes immediately append the inverse: a cancellation site.
            if rng.gen_bool(0.3) {
                circuit
                    .push_controlled(gate.inverse(), &[Control::new(control, level)], &[target])
                    .unwrap();
            } else if rng.gen_bool(0.4) {
                // Or a different gate under the same control condition: a
                // same-support fusion site (C(U₂)·C(U₁) = C(U₂·U₁)).
                let next = match rng.gen_range(0..3) {
                    0 => Gate::increment(dim),
                    1 => Gate::clock(dim),
                    _ => Gate::h(dim),
                };
                circuit
                    .push_controlled(next, &[Control::new(control, level)], &[target])
                    .unwrap();
            }
        } else {
            circuit.push_gate(gate.clone(), &[target]).unwrap();
            // Sometimes stack another single-qudit gate: a fusion site.
            if rng.gen_bool(0.4) {
                circuit.push_gate(gate.inverse(), &[target]).unwrap();
            }
        }
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ideal-level pipeline preserves the circuit unitary: post-pass
    /// kernels equal the naive reference oracle on the raw circuit.
    #[test]
    fn ideal_passes_preserve_semantics(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..5);
        let ops = rng.gen_range(4..14);
        let circuit = random_circuit(dim, width, ops, &mut rng);

        let ir = compile(&circuit, PassLevel::Ideal);
        prop_assert!(ir.circuit().len() <= circuit.len(), "passes must never grow the circuit");

        let state = random_state(dim, width, &mut rng).unwrap();
        let fast = CompiledCircuit::compile_ir(&ir).run(state.clone());
        let mut naive = state;
        for op in circuit.iter() {
            reference::apply_operation_naive(&mut naive, op);
        }
        for (i, (a, b)) in fast.amplitudes().iter().zip(naive.amplitudes()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, TOL),
                "amplitude {i} differs after {} -> {} ops: {a:?} vs {b:?}\n{}",
                circuit.len(),
                ir.circuit().len(),
                ir.report()
            );
        }
    }

    /// NoisePreserving level is the identity transformation: same op list,
    /// same schedule, and bit-identical exact-backend fidelity.
    #[test]
    fn noise_preserving_is_bit_identical(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..4);
        let ops = rng.gen_range(3..8);
        let circuit = random_circuit(3, width, ops, &mut rng);

        let ir = compile(&circuit, PassLevel::NoisePreserving);
        prop_assert_eq!(ir.circuit(), &circuit);
        prop_assert_eq!(ir.schedule(), &Schedule::asap(&circuit));

        // Exact (deterministic) backend: fidelity on the raw circuit and on
        // the pipeline's output circuit must agree to the last bit.
        let config = TrajectoryConfig {
            trials: 1,
            seed,
            input: InputState::AllOnes,
            ..TrajectoryConfig::default()
        };
        let raw = exact_fidelity(&circuit, &models::sc(), &config).unwrap().mean;
        let passed = exact_fidelity(ir.circuit(), &models::sc(), &config).unwrap().mean;
        prop_assert_eq!(raw.to_bits(), passed.to_bits());
    }

    /// The specialization tags match the kernels the simulator's plan
    /// builder actually dispatches, operation by operation.
    #[test]
    fn specialize_tags_match_dispatched_kernels(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..5);
        let circuit = random_circuit(dim, width, rng.gen_range(3..10), &mut rng);
        let ir = compile(&circuit, PassLevel::Ideal);
        prop_assert_eq!(ir.kernel_tags().len(), ir.circuit().len());
        for (op, &tag) in ir.circuit().iter().zip(ir.kernel_tags()) {
            let plan = ApplyPlan::for_operation(ir.circuit().width(), op);
            prop_assert_eq!(plan.kernel_class(), tag);
        }
    }
}

#[test]
fn ideal_passes_reduce_kernel_invocations_on_paper_constructions() {
    // Grover: the diffusion operator's H/X sandwiches around the
    // phase-flip trees leave adjacent single-qudit pairs on the target
    // qubit; the incrementer's nested Generalized-Toffoli trees expose
    // adjacent inverse pairs between uncompute and compute halves.
    let grover = grover_circuit(4, 11, optimal_iterations(4)).unwrap();
    let ir = compile(&grover, PassLevel::Ideal);
    assert!(
        ir.circuit().len() < grover.len(),
        "Grover: expected a reduction, got {} -> {}",
        grover.len(),
        ir.circuit().len()
    );

    let incr = incrementer(8).unwrap();
    let ir = compile(&incr, PassLevel::Ideal);
    assert!(
        ir.circuit().len() < incr.len(),
        "incrementer: expected a reduction, got {} -> {}",
        incr.len(),
        ir.circuit().len()
    );
    // Same-support fusion (identical targets + control conditions) is what
    // pushes this below the 24 ops single-qudit-only fusion reached —
    // adjacent controlled pairs in the carry chain compose.
    assert!(
        ir.circuit().len() <= 18,
        "incrementer: same-support fusion regressed, got {} ops",
        ir.circuit().len()
    );
    assert!(ir.report().post.depth() < ir.report().pre.depth());

    // And the transformed incrementer still increments, exhaustively.
    let compiled = CompiledCircuit::compile_ir(&ir);
    for value in 0..(1usize << 8) {
        let input = qutrit_toffoli::incrementer::value_to_register(value, 8);
        let expected = qutrit_toffoli::incrementer::value_to_register((value + 1) % (1 << 8), 8);
        let out = compiled.run(qudit_core::StateVector::from_basis_state(3, &input).unwrap());
        assert!(
            (out.probability(&expected).unwrap() - 1.0).abs() < 1e-9,
            "value {value}"
        );
    }
}
