//! Algorithm-library acceptance suite: golden resource counts for every
//! generator at two sizes (pinned like `tests/resource_report.rs`),
//! semantic verification against the exact noise-free backend (QFT†∘QFT
//! identity, adder truth tables, GHZ/W amplitudes, phase-estimation digit
//! recovery), and execution of every catalog instance at every pass level
//! including `Physical` routed onto a line topology.

use qudit_algos::{
    adder_input, catalog, ghz, phase_estimation, qft, qft_adder, qft_inverse, qft_multiplier,
    ripple_adder, w_state,
};
use qudit_api::{Executor, InputState, JobSpec, PassLevel, Topology};
use qudit_circuit::{Circuit, ResourceReport};
use qudit_core::{gates::qudit::clock, CMatrix, Complex};

/// Runs a noise-free job and returns the pure output state vector.
fn evolve(executor: &Executor, circuit: Circuit, input: Vec<usize>) -> qudit_core::StateVector {
    let spec = JobSpec::builder(circuit)
        .input(InputState::Basis(input))
        .build()
        .unwrap();
    let result = executor.run(&spec).unwrap();
    let states = result.states().unwrap();
    states[0].pure().expect("noise-free pure state").clone()
}

#[test]
fn golden_resource_counts_are_pinned_at_two_sizes_per_generator() {
    // (label, circuit, total ops, two-qudit gates after Di & Wei, depth).
    // These are structural goldens: a drift in any generator, the
    // scheduler, or the physical lowering moves a pinned number.
    let goldens: Vec<(&str, Circuit, usize, usize, usize)> = vec![
        ("qft(3,2)", qft(3, 2).unwrap(), 4, 2, 4),
        ("qft(3,3)", qft(3, 3).unwrap(), 7, 4, 6),
        ("qft(2,4)", qft(2, 4).unwrap(), 12, 8, 8),
        ("qft_adder(3,2)", qft_adder(3, 2).unwrap(), 9, 5, 8),
        ("qft_adder(2,3)", qft_adder(2, 3).unwrap(), 18, 12, 13),
        (
            "qft_multiplier(3,2)",
            qft_multiplier(3, 2).unwrap(),
            22,
            98,
            101,
        ),
        (
            "qft_multiplier(2,2)",
            qft_multiplier(2, 2).unwrap(),
            10,
            26,
            29,
        ),
        ("ripple_adder(3,2)", ripple_adder(3, 2).unwrap(), 21, 21, 17),
        ("ripple_adder(3,3)", ripple_adder(3, 3).unwrap(), 31, 31, 24),
        ("ripple_adder(2,2)", ripple_adder(2, 2).unwrap(), 13, 33, 32),
        (
            "phase_estimation(3,1)",
            phase_estimation(3, 1, &clock(3)).unwrap(),
            4,
            2,
            4,
        ),
        (
            "phase_estimation(3,2)",
            phase_estimation(3, 2, &clock(3)).unwrap(),
            10,
            6,
            9,
        ),
        (
            "phase_estimation(2,3)",
            phase_estimation(2, 3, &clock(2)).unwrap(),
            13,
            7,
            10,
        ),
        ("ghz(3,4)", ghz(3, 4).unwrap(), 4, 3, 4),
        ("ghz(2,3)", ghz(2, 3).unwrap(), 3, 2, 3),
        ("w_state(3,4)", w_state(3, 4).unwrap(), 7, 6, 7),
        ("w_state(2,2)", w_state(2, 2).unwrap(), 3, 2, 3),
    ];
    for (label, circuit, ops, two_qudit, depth) in goldens {
        let report = ResourceReport::measure(&circuit);
        assert_eq!(report.total_ops(), ops, "{label} total ops");
        assert_eq!(report.two_qudit_gates(), two_qudit, "{label} 2q gates");
        assert_eq!(report.depth(), depth, "{label} depth");
    }
    // The paper's radix trade at whole-algorithm scale: the intermediate-
    // qutrit Toffoli makes the d = 3 ripple adder cheaper in two-qudit
    // gates than the identical-layout d = 2 adder (21 vs 33).
    let qutrit = ResourceReport::measure(&ripple_adder(3, 2).unwrap());
    let qubit = ResourceReport::measure(&ripple_adder(2, 2).unwrap());
    assert!(qutrit.two_qudit_gates() < qubit.two_qudit_gates());
}

#[test]
fn qft_inverse_composes_to_the_identity_on_the_exact_backend() {
    let executor = Executor::new();
    for (dim, width) in [(3usize, 2usize), (2, 3)] {
        let mut c = qft(dim, width).unwrap();
        c.extend(&qft_inverse(dim, width).unwrap()).unwrap();
        for index in 0..dim.pow(width as u32) {
            let digits = qudit_core::StateVector::decode_index(dim, width, index);
            let out = evolve(&executor, c.clone(), digits.clone());
            let p = out.probability(&digits).unwrap();
            assert!(
                (p - 1.0).abs() < 1e-9,
                "d={dim} QFT†∘QFT moved |{digits:?}⟩: p = {p}"
            );
        }
    }
}

#[test]
fn qft_transforms_a_basis_state_to_the_documented_phases() {
    // |x⟩ → (1/√d^n) Σ_y e^{2πi·x·y/d^n} |y⟩ with big-endian digit order:
    // checked amplitude-by-amplitude for d = 3, n = 2, x = 4.
    let executor = Executor::new();
    let dim = 3usize;
    let width = 2usize;
    let x = 4usize;
    let out = evolve(
        &executor,
        qft(dim, width).unwrap(),
        qudit_core::StateVector::decode_index(dim, width, x),
    );
    let n_states = dim.pow(width as u32);
    let norm = 1.0 / (n_states as f64).sqrt();
    for y in 0..n_states {
        let expected = Complex::cis(std::f64::consts::TAU * (x * y) as f64 / n_states as f64);
        let actual = out
            .amplitude(&qudit_core::StateVector::decode_index(dim, width, y))
            .unwrap();
        assert!(
            (actual - expected * Complex::new(norm, 0.0)).abs() < 1e-9,
            "amplitude at y={y}: {actual:?}"
        );
    }
}

#[test]
fn both_adders_add_exhaustively_on_the_quantum_backend() {
    let executor = Executor::new();
    // The Draper adder over Z_{d^n}: |a, b⟩ → |a, a+b mod d^n⟩.
    let dim = 3usize;
    let n = 2usize;
    let modulus = dim.pow(n as u32);
    for a in 0..modulus {
        for b in 0..modulus {
            let mut input = qudit_core::StateVector::decode_index(dim, n, a);
            input.extend(qudit_core::StateVector::decode_index(dim, n, b));
            let out = evolve(&executor, qft_adder(dim, n).unwrap(), input);
            let mut expected = qudit_core::StateVector::decode_index(dim, n, a);
            expected.extend(qudit_core::StateVector::decode_index(
                dim,
                n,
                (a + b) % modulus,
            ));
            let p = out.probability(&expected).unwrap();
            assert!((p - 1.0).abs() < 1e-8, "draper {a}+{b}: p = {p}");
        }
    }
    // The ripple-carry adder on binary registers, via its qutrit carries.
    let n = 2usize;
    for a in 0..1usize << n {
        for b in 0..1usize << n {
            let out = evolve(&executor, ripple_adder(3, n).unwrap(), adder_input(n, a, b));
            let sum = a + b;
            let mut expected = vec![0usize; 2 * n + 2];
            for i in 0..n {
                expected[1 + 2 * i] = (sum >> (n - 1 - i)) & 1;
                expected[2 + 2 * i] = (a >> (n - 1 - i)) & 1;
            }
            expected[2 * n + 1] = sum >> n;
            let p = out.probability(&expected).unwrap();
            assert!((p - 1.0).abs() < 1e-9, "ripple {a}+{b}: p = {p}");
        }
    }
}

#[test]
fn ghz_and_w_states_have_the_documented_amplitudes() {
    let executor = Executor::new();
    // GHZ over d = 3, n = 3: amplitude 1/√3 on |jjj⟩, zero elsewhere.
    let out = evolve(&executor, ghz(3, 3).unwrap(), vec![0; 3]);
    let uniform = 1.0 / 3f64.sqrt();
    for j in 0..3usize {
        let amp = out.amplitude(&[j, j, j]).unwrap();
        assert!((amp.abs() - uniform).abs() < 1e-9, "|{j}{j}{j}⟩: {amp:?}");
    }
    let diagonal_weight: f64 = (0..3).map(|j| out.probability(&[j, j, j]).unwrap()).sum();
    assert!((diagonal_weight - 1.0).abs() < 1e-9);

    // W over d = 3, n = 4: amplitude 1/2 on each single-excitation state.
    let out = evolve(&executor, w_state(3, 4).unwrap(), vec![0; 4]);
    let mut total = 0.0;
    for i in 0..4usize {
        let mut digits = vec![0usize; 4];
        digits[i] = 1;
        let amp = out.amplitude(&digits).unwrap();
        assert!((amp.abs() - 0.5).abs() < 1e-9, "excitation at {i}: {amp:?}");
        total += out.probability(&digits).unwrap();
    }
    assert!((total - 1.0).abs() < 1e-9, "leaked outside the W manifold");
}

#[test]
fn phase_estimation_recovers_exact_eigenphase_digits() {
    let executor = Executor::new();
    // A diagonal unitary with eigenphase φ = m/d^t on |0⟩ is estimated
    // exactly: the counting register must read the base-d digits of m.
    let dim = 3usize;
    let t = 2usize;
    for m in [0usize, 1, 5, 8] {
        let phi = m as f64 / dim.pow(t as u32) as f64;
        let u = CMatrix::diagonal(&[
            Complex::cis(std::f64::consts::TAU * phi),
            Complex::ONE,
            Complex::ONE,
        ]);
        let out = evolve(
            &executor,
            phase_estimation(dim, t, &u).unwrap(),
            vec![0; t + 1],
        );
        let mut expected = qudit_core::StateVector::decode_index(dim, t, m);
        expected.push(0);
        let p = out.probability(&expected).unwrap();
        assert!((p - 1.0).abs() < 1e-9, "m={m}: p = {p}");
    }
}

#[test]
fn every_catalog_instance_executes_at_every_pass_level_including_routed() {
    let executor = Executor::new();
    for case in catalog() {
        let circuit = case.circuit();
        for level in [
            PassLevel::NoisePreserving,
            PassLevel::Physical,
            PassLevel::PhysicalIdeal,
            PassLevel::Ideal,
        ] {
            let spec = JobSpec::builder(circuit.clone())
                .level(level)
                .build()
                .unwrap();
            executor
                .run(&spec)
                .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", case.name));
        }
        // Physical on a non-trivial topology: routing must succeed and the
        // routed run must still execute.
        let spec = JobSpec::builder(circuit.clone())
            .level(PassLevel::Physical)
            .topology(Topology::linear(circuit.width()).unwrap())
            .build()
            .unwrap();
        executor
            .run(&spec)
            .unwrap_or_else(|e| panic!("{} routed on a line: {e}", case.name));
    }
}
