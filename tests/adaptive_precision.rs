//! Adaptive-precision invariants at workspace level: the early stopper
//! consumes exactly a prefix of the fixed-count RNG stream (so "run until
//! the bar is small" never changes *what* is simulated, only *how much*),
//! the executor's result cache answers bit-identically without
//! re-simulating, and pre-precision wire payloads keep their exact
//! behaviour.

use proptest::prelude::*;
use qudit_api::{Executor, JobSpec};
use qudit_circuit::{Circuit, Control, Gate, PassLevel};
use qudit_noise::{
    models, CancelToken, InputState, NoiseModel, Precision, TrajectoryConfig, TrajectorySimulator,
};

fn toffoli_fig4() -> Circuit {
    let mut c = Circuit::new(3, 3);
    c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
        .unwrap();
    c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
        .unwrap();
    c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
        .unwrap();
    c
}

/// The per-trial fidelity stream an adaptive run consumed must be
/// bit-identical to the first N entries of a fixed-count run with the same
/// seed — for one (model, level) pair.
fn assert_prefix_determinism(model: &NoiseModel, level: PassLevel, seed: u64, sigma: f64) {
    let circuit = toffoli_fig4();
    let sim = TrajectorySimulator::with_level(&circuit, model, level).unwrap();
    let config = TrajectoryConfig {
        trials: 192,
        seed,
        level,
        input: InputState::RandomQubitSubspace,
    };
    let token = CancelToken::never();
    let (fixed_est, fixed_stream) = sim
        .run_traced(&config, &Precision::FixedTrials, &token)
        .unwrap();
    assert_eq!(fixed_est.trials, 192);
    let (est, stream) = sim
        .run_traced(
            &config,
            &Precision::TargetSigma {
                sigma,
                min_trials: 8,
                max_trials: 192,
            },
            &token,
        )
        .unwrap();
    assert_eq!(est.trials, stream.len());
    assert!(stream.len() <= fixed_stream.len());
    assert!(stream.len() >= 8);
    for (i, (a, f)) in stream.iter().zip(&fixed_stream).enumerate() {
        assert_eq!(
            a.to_bits(),
            f.to_bits(),
            "model {} level {} seed {seed}: trial {i} diverged",
            model.name,
            level.name()
        );
    }
}

#[test]
fn adaptive_stream_is_a_bit_identical_prefix_for_every_model_and_level() {
    // The full published-model sweep at both noise accountings — the
    // deterministic anchor the seed-randomized proptest below widens.
    for model in models::all_models() {
        for level in [PassLevel::Physical, PassLevel::NoisePreserving] {
            assert_prefix_determinism(&model, level, 2019, 0.03);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adaptive_prefix_determinism_holds_across_seeds_and_targets(
        seed in 0u64..100_000,
        model_idx in 0usize..7,
        level_idx in 0usize..2,
        sigma in 0.02f64..0.2,
    ) {
        let model = models::all_models()[model_idx].clone();
        let level = [PassLevel::Physical, PassLevel::NoisePreserving][level_idx];
        assert_prefix_determinism(&model, level, seed, sigma);
    }

    #[test]
    fn cache_hits_are_bit_identical_and_simulate_nothing(
        seed in 0u64..100_000,
        model_idx in 0usize..7,
    ) {
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::all_models()[model_idx].clone())
            .trials(16)
            .seed(seed)
            .build()
            .unwrap();
        let miss = executor.run(&spec).unwrap();
        let simulated = executor.jobs_simulated();
        let hit = executor.run(&spec).unwrap();
        prop_assert_eq!(executor.jobs_simulated(), simulated);
        prop_assert_eq!(&hit, &miss);
        prop_assert_eq!(
            hit.fidelity().unwrap().mean.to_bits(),
            miss.fidelity().unwrap().mean.to_bits()
        );
        prop_assert_eq!(executor.result_cache_stats().hits, 1);
    }
}

#[test]
fn pre_precision_wire_payloads_parse_and_run_bit_identically() {
    // A payload from before the `precision` field existed: strip the field
    // from a current serialization to get the byte-for-byte old shape.
    let spec = JobSpec::builder(toffoli_fig4())
        .noise(models::sc())
        .trials(24)
        .seed(5)
        .input(InputState::AllOnes)
        .build()
        .unwrap();
    let old_json = spec
        .to_json()
        .replace(",\"precision\":{\"kind\":\"fixed\"}", "");
    assert!(!old_json.contains("precision"));
    let old_spec = JobSpec::from_json(&old_json).unwrap();
    assert_eq!(old_spec, spec);
    assert_eq!(*old_spec.precision(), Precision::FixedTrials);

    // And it runs bit-identically to the modern spec (uncached executors,
    // so both actually simulate).
    let a = Executor::with_result_cache(0).run(&old_spec).unwrap();
    let b = Executor::with_result_cache(0).run(&spec).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        a.fidelity().unwrap().mean.to_bits(),
        b.fidelity().unwrap().mean.to_bits()
    );
    assert_eq!(
        a.fidelity().unwrap().std_error.to_bits(),
        b.fidelity().unwrap().std_error.to_bits()
    );
}
